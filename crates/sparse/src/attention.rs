//! One-pass fused attention pipelines: SDDMM → softmax → SpMM in a single
//! CSR sweep (paper Section 6.2, pushed through the *whole* sandwich).
//!
//! The staged execution of an attentional layer runs three separate
//! traversals of the adjacency structure and allocates two intermediate
//! score matrices per layer:
//!
//! ```text
//!   staged:   E = A ⊙ s(H)      (SDDMM sweep, allocates E)
//!             Ψ = sm(E)         (softmax sweep, allocates Ψ)
//!             Z = Ψ H'          (SpMM sweep)
//! ```
//!
//! The fused kernels here collapse the sandwich into one sweep per
//! nnz-balanced row chunk of the `rt` pool — the FusedMM pattern:
//!
//! ```text
//!   row i:   indices[rlo..rhi] ──┬─► e_j = score(i, j)
//!            (one pass over the  │   (dot / cosine / u+v)
//!             stored entries)    │
//!                                ├─► p_j = exp(e_j − m) / Σ   (L1-resident row)
//!                                │
//!                                └─► z[i, t0..t1] += p_j · h'[j, t0..t1]
//!                                    (feature tiles of ATGNN_COL_TILE cols)
//! ```
//!
//! No intermediate score `Csr` is allocated on the hot path: the row of
//! scores lives in per-thread scratch (`rt::with_scratch`) — or directly in
//! the caller's cache buffer when training needs `Ψ` for the backward pass.
//! The softmax *streams with the sweep*: because the graph softmax of
//! Section 4.2 reduces over a single CSR row, the whole normalization
//! finalizes on the L1-resident row buffer as soon as the row is scored
//! (max fold, exp + sum, divide) — one exp per stored entry, in the same
//! floating-point order as the staged [`masked::row_softmax`], and never
//! a second traversal of the adjacency structure. The aggregation
//! processes feature columns in tiles so a hot row of `H'` stays in cache
//! across a neighborhood, while the per-output-element accumulation order
//! over neighbors stays identical to [`crate::spmm::spmm`] — tile sizes
//! change only the outer loop, never the neighbor order, so results are
//! bit-identical across `ATGNN_THREADS` *and* `ATGNN_COL_TILE`.
//!
//! The staged kernels remain available behind [`AttentionExec::Staged`] as
//! the test oracle; layer code selects a path through an `ExecPlan` (in
//! `atgnn::plan`) rather than calling score kernels directly.

use crate::csr::Csr;
use crate::{fused, masked, sddmm, spmm};
use atgnn_tensor::rt::{self, Cost, DisjointSlice, Tunable};
use atgnn_tensor::{blocks, gemm, micro, Activation, Dense, Scalar};

/// Stored entries below which the fused attention sweeps stay sequential.
/// Override with `ATGNN_ATTENTION_PAR_THRESHOLD` (`0` forces parallel).
static PAR_THRESHOLD: Tunable = Tunable::new("ATGNN_ATTENTION_PAR_THRESHOLD", 4 * 1024);

/// Feature columns per aggregation tile. The default (128 columns, 1 KiB
/// per f64 row slice) keeps one source row slice, one output row slice and
/// the score row comfortably inside L2 even for hub rows with thousands of
/// neighbors. Override with `ATGNN_COL_TILE`.
static COL_TILE: Tunable = Tunable::new("ATGNN_COL_TILE", 128);

/// How an attentional layer executes its score→softmax→aggregate sandwich.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AttentionExec {
    /// One CSR sweep: scores, streaming softmax and aggregation fused
    /// (no intermediate score matrices on the hot path).
    #[default]
    FusedOnePass,
    /// Three sweeps with materialized intermediates — the reference
    /// pipeline, kept as the oracle for equivalence tests.
    Staged,
}

impl AttentionExec {
    /// Whether this execution path materializes the n×n score/attention
    /// matrices as real `Csr` allocations. The fused one-pass sweep keeps
    /// score rows in per-thread scratch, so the alias analysis treats its
    /// in-sandwich virtual tensors as buffer-free.
    pub fn materializes_scores(self) -> bool {
        matches!(self, AttentionExec::Staged)
    }

    /// Human-readable name used in diagnostics and reports.
    pub fn name(self) -> &'static str {
        match self {
            AttentionExec::FusedOnePass => "fused",
            AttentionExec::Staged => "staged",
        }
    }
}

/// Schedule fact for the fused sweep's aggregation: neighbors accumulate
/// in ascending CSR storage order per output element, identical to
/// [`crate::spmm::spmm`], and tile size only reorders the *outer* column
/// loop ([`aggregate_row`]'s axpy is elementwise). Consumed by the
/// plan-time determinism analysis.
pub const SWEEP_ORDER: rt::ReductionOrder = rt::ReductionOrder::RowSequential;

/// The result of one fused attention forward sweep.
pub struct FusedAttention<T: Scalar> {
    /// The aggregation `softmax(C) @ H'` (raw scores for VA, which has no
    /// softmax).
    pub out: Dense<T>,
    /// The attention matrix `Ψ`, materialized only when the caller asked
    /// for training caches.
    pub psi: Option<Csr<T>>,
    /// The model-specific secondary cache (AGNN cosines, GAT
    /// pre-activation scores), only with training caches.
    pub scores: Option<Csr<T>>,
}

/// Aggregates one output row: `out_row[t] += p_j · src[j, t]` for every
/// stored neighbor `j`, processing feature columns in `tile`-wide slices
/// so `src` rows are reused from cache across the neighborhood. The inner
/// axpy ([`micro::axpy`]) is strictly elementwise and the loop order
/// (neighbors in storage order per output element) matches
/// [`crate::spmm::spmm`] exactly, so the floating-point result does not
/// depend on the tile size.
#[inline]
fn aggregate_row<T: Scalar>(out_row: &mut [T], cols: &[u32], p: &[T], src: &Dense<T>, tile: usize) {
    let k = out_row.len();
    let mut t0 = 0;
    while t0 < k {
        let t1 = (t0 + tile).min(k);
        let out_t = &mut out_row[t0..t1];
        for (&c, &pv) in cols.iter().zip(p) {
            micro::axpy(out_t, pv, &src.row(c as usize)[t0..t1]);
        }
        t0 = t1;
    }
}

/// The shared one-pass driver: per nnz-balanced row chunk, let the model
/// score one row at a time (`score_row(r, cols, scores, secondary)` with
/// its own hoisted inner loop, exactly like the staged kernels), apply the
/// row softmax on the still-resident score buffer (when the model has
/// one), and aggregate `src` rows under the resulting weights — one
/// traversal of `indptr`/`indices` total.
///
/// With `want_cache` the (softmaxed) scores land in the future `Ψ` value
/// array and the secondary values in their own array; without it the row
/// of scores lives in per-thread scratch and **no** `Csr` value array is
/// ever created (asserted by tests via [`crate::csr::value_allocs`]).
fn fused_sweep<T: Scalar>(
    a: &Csr<T>,
    src: &Dense<T>,
    softmax: bool,
    want_cache: bool,
    want_secondary: bool,
    score_row: impl Fn(usize, &[u32], &mut [T], Option<&mut [T]>) + Sync,
) -> FusedAttention<T> {
    assert_eq!(a.cols(), src.rows(), "attention: A cols must match H rows");
    let k = src.cols();
    let nnz = a.nnz();
    let indptr = a.indptr();
    let indices = a.indices();
    let tile = COL_TILE.get().max(1);
    let parallel = nnz >= PAR_THRESHOLD.get();
    let mut out = Dense::zeros(a.rows(), k);
    let mut psi_values: Vec<T> = if want_cache {
        vec![T::zero(); nnz]
    } else {
        Vec::new()
    };
    let mut sec_values: Vec<T> = if want_cache && want_secondary {
        vec![T::zero(); nnz]
    } else {
        Vec::new()
    };
    {
        let out_slots = DisjointSlice::new(out.as_mut_slice());
        let psi_slots = DisjointSlice::new(&mut psi_values);
        let sec_slots = DisjointSlice::new(&mut sec_values);
        rt::parallel_for(a.rows(), Cost::Prefix(indptr), parallel, |lo, hi| {
            // SAFETY: row ranges are disjoint across chunk bodies, and
            // indptr is monotone, so the value ranges are disjoint too.
            let out_part = unsafe { out_slots.range_mut(lo * k, hi * k) };
            let (s0, s1) = (indptr[lo], indptr[hi]);
            // SAFETY: as above — each chunk owns `indptr[lo]..indptr[hi]`.
            let mut psi_part = want_cache.then(|| unsafe { psi_slots.range_mut(s0, s1) });
            // SAFETY: as above.
            let mut sec_part =
                (want_cache && want_secondary).then(|| unsafe { sec_slots.range_mut(s0, s1) });
            rt::with_scratch::<T, _>(|ebuf| {
                for (r, out_row) in (lo..hi).zip(out_part.chunks_mut(k.max(1))) {
                    let (rlo, rhi) = (indptr[r], indptr[r + 1]);
                    let cols = &indices[rlo..rhi];
                    let e: &mut [T] = match psi_part.as_deref_mut() {
                        Some(p) => &mut p[rlo - s0..rhi - s0],
                        None => {
                            // Grow-only: every slot is overwritten by the
                            // score loop, so stale tails never get read.
                            if ebuf.len() < rhi - rlo {
                                ebuf.resize(rhi - rlo, T::zero());
                            }
                            &mut ebuf[..rhi - rlo]
                        }
                    };
                    let sec = sec_part.as_deref_mut().map(|p| &mut p[rlo - s0..rhi - s0]);
                    score_row(r, cols, e, sec);
                    // The softmax finalizes on the still-resident row
                    // buffer — max fold, exp + sum, divide — without ever
                    // re-traversing the adjacency structure, with exactly
                    // one exp per stored entry, in the same
                    // floating-point order as the staged
                    // [`masked::row_softmax`].
                    if softmax && !e.is_empty() {
                        let m = e
                            .iter()
                            .copied()
                            .fold(T::neg_infinity(), |acc, b| Scalar::max(acc, b));
                        let mut total = T::zero();
                        for v in e.iter_mut() {
                            *v = (*v - m).exp();
                            total += *v;
                        }
                        for v in e.iter_mut() {
                            *v /= total;
                        }
                    }
                    aggregate_row(out_row, cols, e, src, tile);
                }
            });
        });
    }
    FusedAttention {
        out,
        psi: want_cache.then(|| a.with_values(psi_values)),
        scores: (want_cache && want_secondary).then(|| a.with_values(sec_values)),
    }
}

// ---------------------------------------------------------------------------
// One-pass fused forward kernels
// ---------------------------------------------------------------------------

/// Fused VA forward: `Z' = (A ⊙ (H Hᵀ)) H` in one sweep. VA applies no
/// softmax — `psi` caches the *raw* scores `Ψ = A ⊙ (H Hᵀ)`.
pub fn attention_forward_va<T: Scalar>(
    a: &Csr<T>,
    h: &Dense<T>,
    want_cache: bool,
) -> FusedAttention<T> {
    assert_eq!(a.rows(), h.rows(), "va attention: A rows must match H rows");
    fused_sweep(a, h, false, want_cache, false, |r, cols, e, _| {
        let hr = h.row(r);
        for (slot, &c) in e.iter_mut().zip(cols) {
            *slot = gemm::dot(hr, h.row(c as usize));
        }
    })
}

/// Fused AGNN forward: `Z = sm(A ⊙ (β · H Hᵀ ⊘ n nᵀ)) H'` in one sweep
/// (`H' = H W`, projected by the caller). `scores` caches the raw cosines
/// the backward pass needs; zero-norm endpoints give a zero cosine.
pub fn attention_forward_agnn<T: Scalar>(
    a: &Csr<T>,
    h: &Dense<T>,
    hp: &Dense<T>,
    beta: T,
    want_cache: bool,
) -> FusedAttention<T> {
    assert_eq!(
        a.rows(),
        h.rows(),
        "agnn attention: A rows must match H rows"
    );
    let norms = blocks::row_l2_norms(h);
    fused_sweep(a, hp, true, want_cache, true, move |r, cols, e, sec| {
        let hr = h.row(r);
        let nr = norms[r];
        let cos_of = |c: usize| {
            let denom = nr * norms[c];
            if denom == T::zero() {
                T::zero()
            } else {
                gemm::dot(hr, h.row(c)) / denom
            }
        };
        match sec {
            Some(sec) => {
                for ((slot, cache), &c) in e.iter_mut().zip(sec.iter_mut()).zip(cols) {
                    let cos = cos_of(c as usize);
                    *cache = cos;
                    *slot = beta * cos;
                }
            }
            None => {
                for (slot, &c) in e.iter_mut().zip(cols) {
                    *slot = beta * cos_of(c as usize);
                }
            }
        }
    })
}

/// Fused GAT forward: `Z = sm(A ⊙ LeakyReLU(u 𝟙ᵀ + 𝟙 vᵀ)) H'` in one
/// sweep. `scores` caches the pre-activation values `C_ij = u_i + v_j`.
pub fn attention_forward_gat<T: Scalar>(
    a: &Csr<T>,
    u: &[T],
    v: &[T],
    hp: &Dense<T>,
    slope: f64,
    want_cache: bool,
) -> FusedAttention<T> {
    assert_eq!(a.rows(), u.len(), "gat attention: u length mismatch");
    assert_eq!(a.cols(), v.len(), "gat attention: v length mismatch");
    let act = Activation::LeakyRelu(slope);
    fused_sweep(a, hp, true, want_cache, true, move |r, cols, e, sec| {
        let ur = u[r];
        match sec {
            Some(sec) => {
                for ((slot, cache), &c) in e.iter_mut().zip(sec.iter_mut()).zip(cols) {
                    let pre = ur + v[c as usize];
                    *cache = pre;
                    *slot = act.eval(pre);
                }
            }
            None => {
                for (slot, &c) in e.iter_mut().zip(cols) {
                    *slot = act.eval(ur + v[c as usize]);
                }
            }
        }
    })
}

// ---------------------------------------------------------------------------
// One-pass fused backward kernels
// ---------------------------------------------------------------------------

/// Fused VA backward sweep: computes `N = A ⊙ (M Hᵀ)` *and* `N H` in one
/// traversal (the layer still needs `N` itself for the `Nᵀ H` scatter).
/// Returns `(N, N H)`.
pub fn attention_backward_va<T: Scalar>(
    a: &Csr<T>,
    m: &Dense<T>,
    h: &Dense<T>,
) -> (Csr<T>, Dense<T>) {
    assert_eq!(a.rows(), m.rows(), "va backward: A rows must match M rows");
    let fa = fused_sweep(a, h, false, true, false, |r, cols, e, _| {
        let mr = m.row(r);
        for (slot, &c) in e.iter_mut().zip(cols) {
            *slot = gemm::dot(mr, h.row(c as usize));
        }
    });
    (fa.psi.expect("va backward: sweep always caches N"), fa.out)
}

/// Fused GAT backward sweep. Replays the row sweep once: per stored entry
/// the upstream edge gradient `D_ij = ⟨g_i, h'_j⟩` goes to scratch while
/// the row dot `Σ_j Ψ_ij D_ij` accumulates, then the softmax backward
/// `∂E = Ψ ⊙ (D − rep(rowdot))` and the LeakyReLU gradient at the cached
/// pre-activation fold into `∂C` — whose row sums (`∂u`) fall out of the
/// same pass. Returns `(∂C, ∂u)`; the column sums `∂v` are a scatter and
/// stay on the existing sequential kernel.
pub fn attention_backward_gat<T: Scalar>(
    a: &Csr<T>,
    psi: &Csr<T>,
    c_pre: &Csr<T>,
    hp: &Dense<T>,
    g: &Dense<T>,
    slope: f64,
) -> (Csr<T>, Vec<T>) {
    assert!(
        a.same_pattern(psi),
        "gat backward: Ψ must share A's pattern"
    );
    assert!(
        a.same_pattern(c_pre),
        "gat backward: C must share A's pattern"
    );
    let act = Activation::LeakyRelu(slope);
    let indptr = a.indptr();
    let indices = a.indices();
    let psi_v = psi.values();
    let pre_v = c_pre.values();
    let nnz = a.nnz();
    let mut dc_values = vec![T::zero(); nnz];
    let mut du = vec![T::zero(); a.rows()];
    let parallel = nnz >= PAR_THRESHOLD.get();
    {
        let dc_slots = DisjointSlice::new(&mut dc_values);
        let du_slots = DisjointSlice::new(&mut du);
        rt::parallel_for(a.rows(), Cost::Prefix(indptr), parallel, |lo, hi| {
            // SAFETY: row ranges are disjoint across chunk bodies; indptr
            // is monotone, so the value ranges are disjoint too.
            let dc_part = unsafe { dc_slots.range_mut(indptr[lo], indptr[hi]) };
            // SAFETY: as above.
            let du_part = unsafe { du_slots.range_mut(lo, hi) };
            let base = indptr[lo];
            rt::with_scratch::<T, _>(|dbuf| {
                for (r, du_r) in (lo..hi).zip(du_part.iter_mut()) {
                    let (rlo, rhi) = (indptr[r], indptr[r + 1]);
                    dbuf.clear();
                    dbuf.resize(rhi - rlo, T::zero());
                    let grow = g.row(r);
                    let mut rdot = T::zero();
                    for (d, idx) in dbuf.iter_mut().zip(rlo..rhi) {
                        let dv = gemm::dot(grow, hp.row(indices[idx] as usize));
                        *d = dv;
                        rdot += psi_v[idx] * dv;
                    }
                    let mut du_acc = T::zero();
                    for (&d, idx) in dbuf.iter().zip(rlo..rhi) {
                        let de = psi_v[idx] * (d - rdot);
                        let dc = de * act.grad(pre_v[idx]);
                        dc_part[idx - base] = dc;
                        du_acc += dc;
                    }
                    *du_r = du_acc;
                }
            });
        });
    }
    (a.with_values(dc_values), du)
}

/// Everything the AGNN layer tail needs from the fused backward sweep.
pub struct AgnnBackward<T: Scalar> {
    /// `P = ∂cos ⊘ (n nᵀ)` on the pattern (the layer scatters `Pᵀ H`).
    pub p: Csr<T>,
    /// `P H`, aggregated inside the sweep.
    pub ph: Dense<T>,
    /// `∂cos ⊙ cos` — the layer takes its column sums.
    pub tc: Csr<T>,
    /// Row sums of `tc`, accumulated inside the sweep.
    pub row_corr: Vec<T>,
    /// `∂β = Σ ∂S ⊙ cos`.
    pub dbeta: T,
}

/// Fused AGNN backward sweep: one traversal produces the softmax backward,
/// `∂β`, the normalized gradient `P`, the correction products `∂cos ⊙ cos`
/// with their row sums, and the aggregation `P H`. Scatter-shaped pieces
/// (`Pᵀ H`, column sums) stay on the existing deterministic kernels in the
/// layer.
pub fn attention_backward_agnn<T: Scalar>(
    a: &Csr<T>,
    psi: &Csr<T>,
    cos: &Csr<T>,
    h: &Dense<T>,
    hp: &Dense<T>,
    g: &Dense<T>,
    beta: T,
) -> AgnnBackward<T> {
    assert!(
        a.same_pattern(psi),
        "agnn backward: Ψ must share A's pattern"
    );
    assert!(
        a.same_pattern(cos),
        "agnn backward: cos must share A's pattern"
    );
    let norms = blocks::row_l2_norms(h);
    let inv = |x: T| {
        if x == T::zero() {
            T::zero()
        } else {
            T::one() / x
        }
    };
    let indptr = a.indptr();
    let indices = a.indices();
    let psi_v = psi.values();
    let cos_v = cos.values();
    let nnz = a.nnz();
    let k = h.cols();
    let tile = COL_TILE.get().max(1);
    let mut p_values = vec![T::zero(); nnz];
    let mut tc_values = vec![T::zero(); nnz];
    let mut ph = Dense::zeros(a.rows(), k);
    let mut row_corr = vec![T::zero(); a.rows()];
    let mut dbeta_rows = vec![T::zero(); a.rows()];
    let parallel = nnz >= PAR_THRESHOLD.get();
    {
        let p_slots = DisjointSlice::new(&mut p_values);
        let tc_slots = DisjointSlice::new(&mut tc_values);
        let ph_slots = DisjointSlice::new(ph.as_mut_slice());
        let corr_slots = DisjointSlice::new(&mut row_corr);
        let dbeta_slots = DisjointSlice::new(&mut dbeta_rows);
        rt::parallel_for(a.rows(), Cost::Prefix(indptr), parallel, |lo, hi| {
            // SAFETY: row ranges are disjoint across chunk bodies; indptr
            // is monotone, so the value ranges are disjoint too.
            let p_part = unsafe { p_slots.range_mut(indptr[lo], indptr[hi]) };
            // SAFETY: as above.
            let tc_part = unsafe { tc_slots.range_mut(indptr[lo], indptr[hi]) };
            // SAFETY: as above.
            let ph_part = unsafe { ph_slots.range_mut(lo * k, hi * k) };
            // SAFETY: as above.
            let corr_part = unsafe { corr_slots.range_mut(lo, hi) };
            // SAFETY: as above.
            let dbeta_part = unsafe { dbeta_slots.range_mut(lo, hi) };
            let base = indptr[lo];
            rt::with_scratch::<T, _>(|dbuf| {
                for (i, (r, ph_row)) in (lo..hi).zip(ph_part.chunks_mut(k.max(1))).enumerate() {
                    let (rlo, rhi) = (indptr[r], indptr[r + 1]);
                    let cols = &indices[rlo..rhi];
                    dbuf.clear();
                    dbuf.resize(rhi - rlo, T::zero());
                    let grow = g.row(r);
                    let mut rdot = T::zero();
                    for (d, idx) in dbuf.iter_mut().zip(rlo..rhi) {
                        let dv = gemm::dot(grow, hp.row(indices[idx] as usize));
                        *d = dv;
                        rdot += psi_v[idx] * dv;
                    }
                    let ir = inv(norms[r]);
                    let mut dbeta_acc = T::zero();
                    let mut corr_acc = T::zero();
                    for (&d, idx) in dbuf.iter().zip(rlo..rhi) {
                        let ds = psi_v[idx] * (d - rdot);
                        dbeta_acc += ds * cos_v[idx];
                        let dcos = beta * ds;
                        let tcv = dcos * cos_v[idx];
                        tc_part[idx - base] = tcv;
                        corr_acc += tcv;
                        // Match the staged evaluation order exactly:
                        // dcos · (n_i⁻¹ · n_j⁻¹).
                        p_part[idx - base] = dcos * (ir * inv(norms[indices[idx] as usize]));
                    }
                    dbeta_part[i] = dbeta_acc;
                    corr_part[i] = corr_acc;
                    aggregate_row(ph_row, cols, &p_part[rlo - base..rhi - base], h, tile);
                }
            });
        });
    }
    // Sequential reduction in row order — bit-identical for every thread
    // count, and identical to the staged `row_dots(∂S, cos).sum()`.
    let dbeta = dbeta_rows.into_iter().sum();
    AgnnBackward {
        p: a.with_values(p_values),
        ph,
        tc: a.with_values(tc_values),
        row_corr,
        dbeta,
    }
}

// ---------------------------------------------------------------------------
// Staged oracle pipelines
// ---------------------------------------------------------------------------

/// Staged VA forward: materialized scores, then SpMM — the pre-fusion
/// pipeline, kept as the equivalence-test oracle.
pub fn staged_forward_va<T: Scalar>(
    a: &Csr<T>,
    h: &Dense<T>,
    want_cache: bool,
) -> FusedAttention<T> {
    let psi = fused::va_scores(a, h);
    let out = spmm::spmm(&psi, h);
    FusedAttention {
        out,
        psi: want_cache.then_some(psi),
        scores: None,
    }
}

/// Staged AGNN forward: fused score kernel, materialized softmax, SpMM.
pub fn staged_forward_agnn<T: Scalar>(
    a: &Csr<T>,
    h: &Dense<T>,
    hp: &Dense<T>,
    beta: T,
    want_cache: bool,
) -> FusedAttention<T> {
    let (scores, cos) = fused::agnn_scores(a, h, beta);
    let psi = masked::row_softmax(&scores);
    let out = spmm::spmm(&psi, hp);
    FusedAttention {
        out,
        psi: want_cache.then_some(psi),
        scores: want_cache.then_some(cos),
    }
}

/// Staged GAT forward: fused score kernel, materialized softmax, SpMM.
pub fn staged_forward_gat<T: Scalar>(
    a: &Csr<T>,
    u: &[T],
    v: &[T],
    hp: &Dense<T>,
    slope: f64,
    want_cache: bool,
) -> FusedAttention<T> {
    let (e, c_pre) = fused::gat_scores(a, u, v, slope);
    let psi = masked::row_softmax(&e);
    let out = spmm::spmm(&psi, hp);
    FusedAttention {
        out,
        psi: want_cache.then_some(psi),
        scores: want_cache.then_some(c_pre),
    }
}

/// Staged VA backward: SDDMM then SpMM, materializing `N` in between.
pub fn staged_backward_va<T: Scalar>(a: &Csr<T>, m: &Dense<T>, h: &Dense<T>) -> (Csr<T>, Dense<T>) {
    let n = sddmm::sddmm_pattern(a, m, h);
    let nh = spmm::spmm(&n, h);
    (n, nh)
}

/// Staged GAT backward: SDDMM, softmax backward, activation gradient and
/// row sums as separate passes.
pub fn staged_backward_gat<T: Scalar>(
    a: &Csr<T>,
    psi: &Csr<T>,
    c_pre: &Csr<T>,
    hp: &Dense<T>,
    g: &Dense<T>,
    slope: f64,
) -> (Csr<T>, Vec<T>) {
    let d = sddmm::sddmm_pattern(a, g, hp);
    let de = masked::row_softmax_backward(psi, &d);
    let act = Activation::LeakyRelu(slope);
    let dc = masked::zip_values(&de, c_pre, |dv, cv| dv * act.grad(cv));
    let du = masked::row_sums(&dc);
    (dc, du)
}

/// Staged AGNN backward: the original multi-pass pipeline.
pub fn staged_backward_agnn<T: Scalar>(
    a: &Csr<T>,
    psi: &Csr<T>,
    cos: &Csr<T>,
    h: &Dense<T>,
    hp: &Dense<T>,
    g: &Dense<T>,
    beta: T,
) -> AgnnBackward<T> {
    let d = sddmm::sddmm_pattern(a, g, hp);
    let ds = masked::row_softmax_backward(psi, &d);
    let dbeta: T = masked::row_dots(&ds, cos).into_iter().sum();
    let dcos = ds.map_values(|v| beta * v);
    let norms = blocks::row_l2_norms(h);
    let inv = |x: T| {
        if x == T::zero() {
            T::zero()
        } else {
            T::one() / x
        }
    };
    let p = {
        let mut vals = dcos.values().to_vec();
        let indptr = dcos.indptr().to_vec();
        let indices = dcos.indices();
        for r in 0..dcos.rows() {
            let ir = inv(norms[r]);
            for idx in indptr[r]..indptr[r + 1] {
                vals[idx] *= ir * inv(norms[indices[idx] as usize]);
            }
        }
        dcos.with_values(vals)
    };
    let ph = spmm::spmm(&p, h);
    let tc = masked::hadamard(&dcos, cos);
    let row_corr = masked::row_sums(&tc);
    AgnnBackward {
        p,
        ph,
        tc,
        row_corr,
        dbeta,
    }
}

// ---------------------------------------------------------------------------
// Exec dispatchers — the only entry points layer code should use
// ---------------------------------------------------------------------------

/// VA forward through the selected execution path.
pub fn forward_va<T: Scalar>(
    exec: AttentionExec,
    a: &Csr<T>,
    h: &Dense<T>,
    want_cache: bool,
) -> FusedAttention<T> {
    match exec {
        AttentionExec::FusedOnePass => attention_forward_va(a, h, want_cache),
        AttentionExec::Staged => staged_forward_va(a, h, want_cache),
    }
}

/// AGNN forward through the selected execution path.
pub fn forward_agnn<T: Scalar>(
    exec: AttentionExec,
    a: &Csr<T>,
    h: &Dense<T>,
    hp: &Dense<T>,
    beta: T,
    want_cache: bool,
) -> FusedAttention<T> {
    match exec {
        AttentionExec::FusedOnePass => attention_forward_agnn(a, h, hp, beta, want_cache),
        AttentionExec::Staged => staged_forward_agnn(a, h, hp, beta, want_cache),
    }
}

/// GAT forward through the selected execution path.
pub fn forward_gat<T: Scalar>(
    exec: AttentionExec,
    a: &Csr<T>,
    u: &[T],
    v: &[T],
    hp: &Dense<T>,
    slope: f64,
    want_cache: bool,
) -> FusedAttention<T> {
    match exec {
        AttentionExec::FusedOnePass => attention_forward_gat(a, u, v, hp, slope, want_cache),
        AttentionExec::Staged => staged_forward_gat(a, u, v, hp, slope, want_cache),
    }
}

/// VA backward through the selected execution path.
pub fn backward_va<T: Scalar>(
    exec: AttentionExec,
    a: &Csr<T>,
    m: &Dense<T>,
    h: &Dense<T>,
) -> (Csr<T>, Dense<T>) {
    match exec {
        AttentionExec::FusedOnePass => attention_backward_va(a, m, h),
        AttentionExec::Staged => staged_backward_va(a, m, h),
    }
}

/// GAT backward through the selected execution path.
#[allow(clippy::too_many_arguments)]
pub fn backward_gat<T: Scalar>(
    exec: AttentionExec,
    a: &Csr<T>,
    psi: &Csr<T>,
    c_pre: &Csr<T>,
    hp: &Dense<T>,
    g: &Dense<T>,
    slope: f64,
) -> (Csr<T>, Vec<T>) {
    match exec {
        AttentionExec::FusedOnePass => attention_backward_gat(a, psi, c_pre, hp, g, slope),
        AttentionExec::Staged => staged_backward_gat(a, psi, c_pre, hp, g, slope),
    }
}

/// AGNN backward through the selected execution path.
#[allow(clippy::too_many_arguments)]
pub fn backward_agnn<T: Scalar>(
    exec: AttentionExec,
    a: &Csr<T>,
    psi: &Csr<T>,
    cos: &Csr<T>,
    h: &Dense<T>,
    hp: &Dense<T>,
    g: &Dense<T>,
    beta: T,
) -> AgnnBackward<T> {
    match exec {
        AttentionExec::FusedOnePass => attention_backward_agnn(a, psi, cos, h, hp, g, beta),
        AttentionExec::Staged => staged_backward_agnn(a, psi, cos, h, hp, g, beta),
    }
}

// ---------------------------------------------------------------------------
// Ψ-only helpers and distributed block wrappers
// ---------------------------------------------------------------------------

/// `Ψ = A ⊙ (H Hᵀ)` alone (the VA layer's public `psi` accessor).
pub fn va_psi<T: Scalar>(a: &Csr<T>, h: &Dense<T>) -> Csr<T> {
    fused::va_scores(a, h)
}

/// AGNN's softmaxed cosine attention matrix alone.
pub fn agnn_psi<T: Scalar>(a: &Csr<T>, h: &Dense<T>, beta: T) -> Csr<T> {
    let (scores, _) = fused::agnn_scores(a, h, beta);
    masked::row_softmax(&scores)
}

/// GAT's softmaxed attention matrix alone (from precomputed `u`, `v`).
pub fn gat_psi<T: Scalar>(a: &Csr<T>, u: &[T], v: &[T], slope: f64) -> Csr<T> {
    let (e, _) = fused::gat_scores(a, u, v, slope);
    masked::row_softmax(&e)
}

/// Staged VA block scores for the distributed 2D-partitioned path, where
/// the softmax row reduction spans a whole grid row and cannot stream
/// locally: `A_block ⊙ (X Yᵀ)`.
pub fn staged_va_block_scores<T: Scalar>(a: &Csr<T>, x: &Dense<T>, y: &Dense<T>) -> Csr<T> {
    sddmm::sddmm_pattern(a, x, y)
}

/// Staged AGNN block scores (distributed path): row-side features/norms
/// differ from column-side on off-diagonal blocks.
pub fn staged_agnn_block_scores<T: Scalar>(
    a: &Csr<T>,
    x: &Dense<T>,
    y: &Dense<T>,
    nx: &[T],
    ny: &[T],
    beta: T,
) -> (Csr<T>, Csr<T>) {
    fused::agnn_scores_block(a, x, y, nx, ny, beta)
}

/// Staged GAT block scores (distributed path).
pub fn staged_gat_block_scores<T: Scalar>(
    a: &Csr<T>,
    u: &[T],
    v: &[T],
    slope: f64,
) -> (Csr<T>, Csr<T>) {
    fused::gat_scores(a, u, v, slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::csr;

    fn graph() -> Csr<f64> {
        let mut coo = Coo::from_edges(
            6,
            6,
            vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 0),
                (1, 4),
                (0, 3),
            ],
        );
        coo.symmetrize_binary();
        Csr::from_coo(&coo)
    }

    fn feats(n: usize, k: usize, seed: usize) -> Dense<f64> {
        Dense::from_fn(n, k, |i, j| {
            ((i * 31 + j * 17 + seed * 7) % 23) as f64 / 11.0 - 1.0
        })
    }

    #[test]
    fn fused_va_forward_matches_staged() {
        let a = graph();
        let h = feats(6, 3, 1);
        let fused = attention_forward_va(&a, &h, true);
        let staged = staged_forward_va(&a, &h, true);
        assert!(fused.out.max_abs_diff(&staged.out) < 1e-12);
        let (fp, sp) = (fused.psi.unwrap(), staged.psi.unwrap());
        for (x, y) in fp.values().iter().zip(sp.values()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_agnn_forward_matches_staged() {
        let a = graph();
        let h = feats(6, 3, 2);
        let hp = feats(6, 4, 3);
        let fused = attention_forward_agnn(&a, &h, &hp, 1.3, true);
        let staged = staged_forward_agnn(&a, &h, &hp, 1.3, true);
        assert!(fused.out.max_abs_diff(&staged.out) < 1e-12);
        let (fp, sp) = (fused.psi.unwrap(), staged.psi.unwrap());
        for (x, y) in fp.values().iter().zip(sp.values()) {
            assert!((x - y).abs() < 1e-12);
        }
        let (fc, sc) = (fused.scores.unwrap(), staged.scores.unwrap());
        for (x, y) in fc.values().iter().zip(sc.values()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_gat_forward_matches_staged() {
        let a = graph();
        let hp = feats(6, 4, 4);
        let u: Vec<f64> = (0..6).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let v: Vec<f64> = (0..6).map(|i| 0.7 - (i as f64) * 0.2).collect();
        let fused = attention_forward_gat(&a, &u, &v, &hp, 0.2, true);
        let staged = staged_forward_gat(&a, &u, &v, &hp, 0.2, true);
        assert!(fused.out.max_abs_diff(&staged.out) < 1e-12);
        let (fp, sp) = (fused.psi.unwrap(), staged.psi.unwrap());
        for (x, y) in fp.values().iter().zip(sp.values()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_psi_rows_sum_to_one() {
        let a = graph();
        let hp = feats(6, 4, 5);
        let u = vec![0.5f64; 6];
        let v = vec![-0.25f64; 6];
        let psi = attention_forward_gat(&a, &u, &v, &hp, 0.2, true)
            .psi
            .unwrap();
        for total in masked::row_sums(&psi) {
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn streaming_softmax_handles_all_negative_rows() {
        // Large negative scores: the running max keeps every exponent at
        // most 0, so nothing underflows to a 0/0.
        let a = graph();
        let hp = feats(6, 4, 6);
        let u = vec![-1e4f64; 6];
        let v = vec![-500.0f64; 6];
        let fa = attention_forward_gat(&a, &u, &v, &hp, 0.2, true);
        let psi = fa.psi.unwrap();
        assert!(psi.values().iter().all(|p| p.is_finite() && *p >= 0.0));
        for total in masked::row_sums(&psi) {
            assert!((total - 1.0).abs() < 1e-12);
        }
        let staged = staged_forward_gat(&a, &u, &v, &hp, 0.2, false);
        assert!(fa.out.max_abs_diff(&staged.out) < 1e-12);
    }

    #[test]
    fn empty_rows_produce_zero_output() {
        let coo = Coo::from_triplets(3, 3, vec![(0, 1)], vec![1.0]);
        let a: Csr<f64> = Csr::from_coo(&coo);
        let hp = feats(3, 2, 7);
        let u = vec![0.1f64; 3];
        let v = vec![0.2f64; 3];
        let fa = attention_forward_gat(&a, &u, &v, &hp, 0.2, false);
        for j in 0..2 {
            assert_eq!(fa.out[(1, j)], 0.0);
            assert_eq!(fa.out[(2, j)], 0.0);
        }
    }

    #[test]
    fn inference_sweep_allocates_no_csr_values() {
        let a = graph();
        let h = feats(6, 3, 8);
        let hp = feats(6, 4, 9);
        let u = vec![0.4f64; 6];
        let v = vec![0.6f64; 6];
        let before = csr::value_allocs();
        let _ = attention_forward_va(&a, &h, false);
        let _ = attention_forward_agnn(&a, &h, &hp, 1.0, false);
        let _ = attention_forward_gat(&a, &u, &v, &hp, 0.2, false);
        assert_eq!(
            csr::value_allocs() - before,
            0,
            "fused inference must not allocate intermediate score matrices"
        );
    }

    #[test]
    fn fused_gat_backward_matches_staged() {
        let a = graph();
        let hp = feats(6, 4, 10);
        let g = feats(6, 4, 11);
        let u: Vec<f64> = (0..6).map(|i| (i as f64) * 0.25 - 0.6).collect();
        let v: Vec<f64> = (0..6).map(|i| 0.1 * (i as f64)).collect();
        let fa = attention_forward_gat(&a, &u, &v, &hp, 0.2, true);
        let (psi, c_pre) = (fa.psi.unwrap(), fa.scores.unwrap());
        let (dc_f, du_f) = attention_backward_gat(&a, &psi, &c_pre, &hp, &g, 0.2);
        let (dc_s, du_s) = staged_backward_gat(&a, &psi, &c_pre, &hp, &g, 0.2);
        for (x, y) in dc_f.values().iter().zip(dc_s.values()) {
            assert!((x - y).abs() < 1e-12);
        }
        for (x, y) in du_f.iter().zip(&du_s) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_agnn_backward_matches_staged() {
        let a = graph();
        let h = feats(6, 3, 12);
        let hp = feats(6, 4, 13);
        let g = feats(6, 4, 14);
        let beta = 0.9;
        let fa = attention_forward_agnn(&a, &h, &hp, beta, true);
        let (psi, cos) = (fa.psi.unwrap(), fa.scores.unwrap());
        let f = attention_backward_agnn(&a, &psi, &cos, &h, &hp, &g, beta);
        let s = staged_backward_agnn(&a, &psi, &cos, &h, &hp, &g, beta);
        assert!((f.dbeta - s.dbeta).abs() < 1e-12);
        assert!(f.ph.max_abs_diff(&s.ph) < 1e-12);
        for (x, y) in f.p.values().iter().zip(s.p.values()) {
            assert!((x - y).abs() < 1e-12);
        }
        for (x, y) in f.tc.values().iter().zip(s.tc.values()) {
            assert!((x - y).abs() < 1e-12);
        }
        for (x, y) in f.row_corr.iter().zip(&s.row_corr) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_va_backward_matches_staged() {
        let a = graph();
        let h = feats(6, 3, 15);
        let m = feats(6, 3, 16);
        let (n_f, nh_f) = attention_backward_va(&a, &m, &h);
        let (n_s, nh_s) = staged_backward_va(&a, &m, &h);
        assert!(nh_f.max_abs_diff(&nh_s) < 1e-12);
        for (x, y) in n_f.values().iter().zip(n_s.values()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn aggregate_row_is_tile_size_invariant() {
        // The accumulation order per output element never depends on the
        // tile width, so results are bit-identical across tile sizes.
        let src = feats(5, 19, 17);
        let cols: Vec<u32> = vec![0, 2, 3, 4];
        let p = [0.3f64, -0.7, 1.1, 0.05];
        let mut reference = vec![0.0f64; 19];
        aggregate_row(&mut reference, &cols, &p, &src, usize::MAX);
        for tile in [1usize, 2, 3, 7, 16, 19, 64] {
            let mut out = vec![0.0f64; 19];
            aggregate_row(&mut out, &cols, &p, &src, tile);
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "tile={tile} changed bits");
            }
        }
    }

    #[test]
    fn zero_norm_rows_give_zero_cosine() {
        let a = graph();
        let mut h = feats(6, 3, 18);
        for v in h.row_mut(0) {
            *v = 0.0;
        }
        let hp = feats(6, 2, 19);
        let fa = attention_forward_agnn(&a, &h, &hp, 1.0, true);
        let cos = fa.scores.unwrap();
        assert!(cos.values().iter().all(|v| v.is_finite()));
        assert_eq!(cos.get(0, 1), 0.0);
    }
}
