//! Fused virtual-tensor kernels (paper Sections 6.1–6.2).
//!
//! In every considered model the attention-score computation `Ψ(A, H)`
//! passes through a dense `n×n` *virtual* matrix (`H Hᵀ` for VA/AGNN, the
//! replicated score matrix `C` for GAT). Materializing it is infeasible
//! (`n` can exceed 10⁹ in the paper's setting), so the execution DAG is
//! traversed until the first sparse sampler and the whole path is fused
//! into one SDDMM-like kernel that iterates `A`'s non-zeros and evaluates
//! the virtual entries on demand.
//!
//! The `unfused_*` references materialize the intermediates instead; they
//! exist for the fusion ablation (Figure 5) and for tests, and must only be
//! called on small graphs.

use crate::csr::Csr;
use crate::sddmm::sddmm_pattern;
use atgnn_tensor::rt::{self, Cost, DisjointSlice, Tunable};
use atgnn_tensor::{blocks, gemm, ops, Activation, Dense, Scalar};

/// Stored entries below which the fused score kernels stay sequential.
/// Override with `ATGNN_FUSED_PAR_THRESHOLD` (`0` forces parallel).
static PAR_THRESHOLD: Tunable = Tunable::new("ATGNN_FUSED_PAR_THRESHOLD", 4 * 1024);

/// Fused VA scores: `Ψ = A ⊙ (H Hᵀ)` in one pass over `A`'s non-zeros
/// (the dense `H Hᵀ` is never formed). `A` is assumed binary, so the
/// Hadamard with its values is skipped.
pub fn va_scores<T: Scalar>(a: &Csr<T>, h: &Dense<T>) -> Csr<T> {
    sddmm_pattern(a, h, h)
}

/// Fused AGNN scores: `β · (H Hᵀ ⊘ n nᵀ)` sampled on `A`'s pattern, where
/// `n_i = ‖h_i‖₂` — the cosine similarity of the endpoint features scaled
/// by the learnable temperature `β`.
///
/// Returns `(scores, cosines)`: the backward pass needs the raw cosines.
/// Zero-norm endpoints yield a zero cosine (instead of NaN).
pub fn agnn_scores<T: Scalar>(a: &Csr<T>, h: &Dense<T>, beta: T) -> (Csr<T>, Csr<T>) {
    let norms = blocks::row_l2_norms(h);
    agnn_scores_block(a, h, h, &norms, &norms, beta)
}

/// Block-level variant of [`agnn_scores`] used by the distributed engine:
/// the sampler `A` is an off-diagonal 2D block, so the row-side features
/// `x` (and their norms `nx`) differ from the column-side `y`/`ny`.
pub fn agnn_scores_block<T: Scalar>(
    a: &Csr<T>,
    x: &Dense<T>,
    y: &Dense<T>,
    nx: &[T],
    ny: &[T],
    beta: T,
) -> (Csr<T>, Csr<T>) {
    assert_eq!(a.rows(), x.rows(), "agnn block: x rows");
    assert_eq!(a.cols(), y.rows(), "agnn block: y rows");
    assert_eq!(a.rows(), nx.len(), "agnn block: nx length");
    assert_eq!(a.cols(), ny.len(), "agnn block: ny length");
    let mut cos_values = vec![T::zero(); a.nnz()];
    let indptr = a.indptr();
    let indices = a.indices();
    let parallel = a.nnz() >= PAR_THRESHOLD.get();
    let slots = DisjointSlice::new(&mut cos_values);
    rt::parallel_for(a.rows(), Cost::Prefix(indptr), parallel, |lo, hi| {
        // SAFETY: row ranges map to disjoint value ranges via indptr.
        let out = unsafe { slots.range_mut(indptr[lo], indptr[hi]) };
        let base = indptr[lo];
        for r in lo..hi {
            let xrow = x.row(r);
            let nr = nx[r];
            for idx in indptr[r]..indptr[r + 1] {
                let c = indices[idx] as usize;
                let denom = nr * ny[c];
                out[idx - base] = if denom == T::zero() {
                    T::zero()
                } else {
                    gemm::dot(xrow, y.row(c)) / denom
                };
            }
        }
    });
    let cos = a.with_values(cos_values);
    let scores = cos.map_values(|v| beta * v);
    (scores, cos)
}

/// Fused GAT edge scores.
///
/// For `H' = H W`, `u = H' a₁`, `v = H' a₂`, the virtual score matrix is
/// `C = u 𝟙ᵀ + 𝟙 vᵀ` (i.e. `C_ij = u_i + v_j`, the split concatenated dot
/// product of Figure 2). This kernel samples `C` on `A`'s pattern and
/// applies the LeakyReLU in the same pass, returning
/// `(E = A ⊙ σ(C), C_pattern)` — the pre-activation values are kept for
/// the backward pass (`σ'(C)`).
pub fn gat_scores<T: Scalar>(a: &Csr<T>, u: &[T], v: &[T], slope: f64) -> (Csr<T>, Csr<T>) {
    assert_eq!(a.rows(), u.len(), "gat_scores: u length mismatch");
    assert_eq!(a.cols(), v.len(), "gat_scores: v length mismatch");
    let act = Activation::LeakyRelu(slope);
    let mut pre = vec![T::zero(); a.nnz()];
    let mut post = vec![T::zero(); a.nnz()];
    let indptr = a.indptr();
    let indices = a.indices();
    let parallel = a.nnz() >= PAR_THRESHOLD.get();
    let pre_slots = DisjointSlice::new(&mut pre);
    let post_slots = DisjointSlice::new(&mut post);
    rt::parallel_for(a.rows(), Cost::Prefix(indptr), parallel, |lo, hi| {
        // SAFETY: row ranges map to disjoint value ranges via indptr.
        let pre_out = unsafe { pre_slots.range_mut(indptr[lo], indptr[hi]) };
        let post_out = unsafe { post_slots.range_mut(indptr[lo], indptr[hi]) };
        let base = indptr[lo];
        for r in lo..hi {
            let ur = u[r];
            for idx in indptr[r]..indptr[r + 1] {
                let c = indices[idx] as usize;
                let score = ur + v[c];
                pre_out[idx - base] = score;
                post_out[idx - base] = act.eval(score);
            }
        }
    });
    (a.with_values(post), a.with_values(pre))
}

/// Unfused VA reference: materializes the dense `n×n` product `H Hᵀ` and
/// masks it with `A` afterwards. **Ablation/test only** — `O(n²k)` time
/// and `O(n²)` memory.
pub fn unfused_va_scores<T: Scalar>(a: &Csr<T>, h: &Dense<T>) -> Csr<T> {
    let hx = gemm::matmul_nt(h, h);
    mask_dense(a, &hx)
}

/// Unfused GAT reference: materializes `C = rep_n(u) + rep_nᵀ(v)` as a
/// dense `n×n` matrix, applies the LeakyReLU, then masks with `A`.
/// **Ablation/test only.**
pub fn unfused_gat_scores<T: Scalar>(a: &Csr<T>, u: &[T], v: &[T], slope: f64) -> Csr<T> {
    let c = ops::add(&blocks::rep(u, v.len()), &blocks::rep_t(v, u.len()));
    let activated = Activation::LeakyRelu(slope).apply(&c);
    mask_dense(a, &activated)
}

/// Unfused AGNN reference: materializes `H Hᵀ` and the outer product
/// `n nᵀ`, divides, scales by `β`, then masks. **Ablation/test only.**
pub fn unfused_agnn_scores<T: Scalar>(a: &Csr<T>, h: &Dense<T>, beta: T) -> Csr<T> {
    let norms = blocks::row_l2_norms(h);
    let mut hx = gemm::matmul_nt(h, h);
    let nn = blocks::outer(&norms, &norms);
    for (x, &d) in hx.as_mut_slice().iter_mut().zip(nn.as_slice()) {
        *x = if d == T::zero() {
            T::zero()
        } else {
            beta * *x / d
        };
    }
    mask_dense(a, &hx)
}

/// Samples a dense matrix on `A`'s pattern: `out_ij = dense_ij` for stored
/// `(i, j)` (the Hadamard `A ⊙ X` for binary `A`).
pub fn mask_dense<T: Scalar>(a: &Csr<T>, dense: &Dense<T>) -> Csr<T> {
    assert_eq!(a.rows(), dense.rows(), "mask: row mismatch");
    assert_eq!(a.cols(), dense.cols(), "mask: col mismatch");
    let mut values = vec![T::zero(); a.nnz()];
    let indptr = a.indptr();
    let indices = a.indices();
    let parallel = a.nnz() >= PAR_THRESHOLD.get();
    let slots = DisjointSlice::new(&mut values);
    rt::parallel_for(a.rows(), Cost::Prefix(indptr), parallel, |lo, hi| {
        // SAFETY: row ranges map to disjoint value ranges via indptr.
        let out = unsafe { slots.range_mut(indptr[lo], indptr[hi]) };
        let base = indptr[lo];
        for r in lo..hi {
            for idx in indptr[r]..indptr[r + 1] {
                out[idx - base] = dense[(r, indices[idx] as usize)];
            }
        }
    });
    a.with_values(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn mask() -> Csr<f64> {
        let coo = Coo::from_edges(4, 4, vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 3), (0, 3)]);
        Csr::from_coo(&coo)
    }

    fn feats() -> Dense<f64> {
        Dense::from_fn(4, 3, |i, j| ((i * 3 + j) % 5) as f64 - 2.0)
    }

    #[test]
    fn fused_va_matches_unfused() {
        let a = mask();
        let h = feats();
        let fused = va_scores(&a, &h);
        let unfused = unfused_va_scores(&a, &h);
        assert!(fused.to_dense().max_abs_diff(&unfused.to_dense()) < 1e-12);
    }

    #[test]
    fn fused_gat_matches_unfused() {
        let a = mask();
        let u: Vec<f64> = vec![0.3, -1.2, 0.7, 2.0];
        let v: Vec<f64> = vec![-0.5, 0.1, 0.0, 1.5];
        let (fused, pre) = gat_scores(&a, &u, &v, 0.2);
        let unfused = unfused_gat_scores(&a, &u, &v, 0.2);
        assert!(fused.to_dense().max_abs_diff(&unfused.to_dense()) < 1e-12);
        // Pre-activation values are the raw sums.
        assert_eq!(pre.get(0, 1), 0.3 + 0.1);
    }

    #[test]
    fn fused_agnn_matches_unfused() {
        let a = mask();
        let h = feats();
        let (fused, cos) = agnn_scores(&a, &h, 1.7);
        let unfused = unfused_agnn_scores(&a, &h, 1.7);
        assert!(fused.to_dense().max_abs_diff(&unfused.to_dense()) < 1e-12);
        // Cosine of an edge between identical rows is 1.
        for &c in cos.values() {
            assert!(c.abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn agnn_zero_norm_rows_give_zero_not_nan() {
        let a = mask();
        let mut h = feats();
        for v in h.row_mut(0) {
            *v = 0.0;
        }
        let (scores, _) = agnn_scores(&a, &h, 1.0);
        assert!(scores.values().iter().all(|v| v.is_finite()));
        assert_eq!(scores.get(0, 1), 0.0);
    }

    #[test]
    fn mask_dense_extracts_pattern() {
        let a = mask();
        let d = Dense::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let m = mask_dense(&a, &d);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.get(0, 0), 0.0); // not on pattern
    }

    #[test]
    fn gat_scores_apply_leaky_relu() {
        let a = mask();
        let u = vec![-1.0f64; 4];
        let v = vec![0.0f64; 4];
        let (post, pre) = gat_scores(&a, &u, &v, 0.2);
        for (p, q) in post.values().iter().zip(pre.values()) {
            assert!((q - -1.0).abs() < 1e-15);
            assert!((p - -0.2).abs() < 1e-15);
        }
    }
}
