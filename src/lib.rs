//! `atgnn-suite` — umbrella crate for the atgnn workspace.
//!
//! Re-exports the workspace crates under one roof so the root `examples/`
//! and `tests/` can exercise the full public API the way a downstream user
//! would. See the README for the crate map.

pub use atgnn as core;
pub use atgnn_baseline as baseline;
pub use atgnn_dist as dist;
pub use atgnn_graphgen as graphgen;
pub use atgnn_net as net;
pub use atgnn_sparse as sparse;
pub use atgnn_tensor as tensor;
