#!/usr/bin/env bash
# Local CI: formatting, lints, tests, and repo-specific hygiene checks.
# Everything runs offline (the workspace has no external dependencies).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (ATGNN_THREADS=1: sequential inline execution) =="
ATGNN_THREADS=1 cargo test -q --workspace

echo "== cargo test (unrestricted thread pool) =="
cargo test -q --workspace

echo "== cargo test (forced RCM reorder + scalar microkernels) =="
# The whole suite must hold under the locality layer's other extreme:
# every model runs on an RCM-permuted graph (outputs mapped back through
# the inverse permutation) with the scalar reference kernels.
ATGNN_REORDER=rcm ATGNN_MICROKERNEL=scalar cargo test -q --workspace

echo "== lint: no unwrap() in kernel code (crates/sparse, crates/tensor) =="
# Kernel code must propagate or assert with context, not unwrap. Test
# modules are exempt (split so this file's own literal doesn't match).
pattern='.unwrap'
pattern="${pattern}()"
bad=0
for crate in crates/sparse/src crates/tensor/src; do
    while IFS= read -r file; do
        # Strip everything from the test module down, then look for unwrap.
        if awk '/#\[cfg\(test\)\]/{exit} {print}' "$file" | grep -nF "$pattern" >/dev/null; then
            echo "forbidden $pattern in non-test code: $file"
            awk '/#\[cfg\(test\)\]/{exit} {print}' "$file" | grep -nF "$pattern"
            bad=1
        fi
    done < <(find "$crate" -name '*.rs')
done
if [ "$bad" -ne 0 ]; then
    echo "FAILED: kernel code must not use $pattern — return Result or expect() with context"
    exit 1
fi

echo "== lint: kernel crates must use the rt pool, not raw threads =="
# All kernel parallelism goes through the persistent runtime so thread
# counts, nnz-balanced scheduling and determinism stay centralized. Only
# rt.rs itself may spawn (crates/net's simulated cluster is exempt — it
# models ranks, not kernel parallelism).
bad=0
for crate in crates/sparse/src crates/tensor/src; do
    while IFS= read -r file; do
        [ "$(basename "$file")" = "rt.rs" ] && continue
        if grep -nE 'thread::(spawn|scope)|std::thread::(spawn|scope)' "$file" >/dev/null; then
            echo "forbidden raw thread use outside rt.rs: $file"
            grep -nE 'thread::(spawn|scope)|std::thread::(spawn|scope)' "$file"
            bad=1
        fi
    done < <(find "$crate" -name '*.rs')
done
if [ "$bad" -ne 0 ]; then
    echo "FAILED: kernel crates must dispatch through atgnn_tensor::rt"
    exit 1
fi

echo "== lint: layer code routes attention through ExecPlan, not staged kernels =="
# Layers must dispatch via atgnn_sparse::attention with an explicit
# AttentionExec (see DESIGN.md §6 "One-pass attention fusion"). Direct
# calls to the staged score kernels (fused::*) or a materialized forward
# softmax (masked::row_softmax(...)) bypass the plan and silently lose
# the one-pass path. The softmax *backward* helpers remain legal — the
# open paren keeps them out of the match.
bad=0
for file in crates/core/src/layers/va.rs crates/core/src/layers/agnn.rs \
    crates/core/src/layers/gat.rs crates/dist/src/layers.rs; do
    if grep -nE 'fused::|masked::row_softmax\(' "$file" >/dev/null; then
        echo "staged attention kernel called directly from layer code: $file"
        grep -nE 'fused::|masked::row_softmax\(' "$file"
        bad=1
    fi
done
if [ "$bad" -ne 0 ]; then
    echo "FAILED: layer code must go through atgnn_sparse::attention + ExecPlan"
    exit 1
fi

echo "== lint: only the plan layer applies graph reorderings =="
# Csr::permute is a preprocessing decision, not a kernel one: kernels and
# layers must stay permutation-oblivious so reordering remains a plan-time
# concern (DESIGN.md §6 "Locality layer"). Legal callers: the definition
# itself (csr.rs), the plan layer (plan.rs), and the dist context, which
# resolves the plan's reordering before partitioning. Test modules are
# exempt via the same awk strip as the unwrap lint.
bad=0
while IFS= read -r file; do
    case "$file" in
    crates/sparse/src/csr.rs | crates/core/src/plan.rs | crates/dist/src/context.rs)
        continue
        ;;
    esac
    if awk '/#\[cfg\(test\)\]/{exit} {print}' "$file" | grep -nF '.permute(' >/dev/null; then
        echo "Csr::permute called outside the plan layer: $file"
        awk '/#\[cfg\(test\)\]/{exit} {print}' "$file" | grep -nF '.permute('
        bad=1
    fi
done < <(find crates/*/src -name '*.rs')
if [ "$bad" -ne 0 ]; then
    echo "FAILED: graph reordering must go through ExecPlan::reorder_graph"
    exit 1
fi

echo "== lint: dist code must use the deadline-bounded recv =="
# Comm::recv carries the fault-injection protocol (dedup, checksums,
# retransmission) and a recv deadline; recv_unbounded is the legacy
# blocking path that survives only for fault-free unit tests inside
# crates/net. Distributed engine code calling it would hang forever on a
# lost frame instead of failing within the timeout.
bad=0
while IFS= read -r file; do
    if grep -nF 'recv_unbounded(' "$file" >/dev/null; then
        echo "legacy unbounded recv in dist code: $file"
        grep -nF 'recv_unbounded(' "$file"
        bad=1
    fi
done < <(find crates/dist/src -name '*.rs')
if [ "$bad" -ne 0 ]; then
    echo "FAILED: crates/dist must use Comm::recv (deadline-bounded, self-healing)"
    exit 1
fi

echo "== chaos smoke (one bounded run per fault class) =="
# Injects each fault class (drop, delay, dup, corrupt, crash, hang) into
# a short distributed GAT training job and asserts the run heals with a
# bit-identical final loss. Every run is fenced by the plan's recv and
# barrier timeouts, so a liveness regression fails in seconds.
cargo run --release -q -p atgnn-bench --bin chaos

echo "== ablation_fusion smoke (staged vs one-pass harness) =="
# Smoke mode: smallest graph only, no timing assertions — verifies the
# staged/one-pass pipeline harness and the BENCH_fusion.json writer run.
ATGNN_SMOKE=1 cargo run --release -q -p atgnn-bench --bin ablation_fusion

echo "== locality smoke (reorder × microkernel sweep harness) =="
# Smoke mode: smallest graph only, no speedup assertion — verifies the
# reorder/microkernel sweep, the permuted-vs-unpermuted equivalence
# checks, and the BENCH_locality.json writer run.
ATGNN_SMOKE=1 cargo run --release -q -p atgnn-bench --bin locality

echo "== ci.sh: all checks passed =="
