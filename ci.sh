#!/usr/bin/env bash
# Local CI: formatting, lints, tests, and repo-specific hygiene checks.
# Everything runs offline (the workspace has no external dependencies).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (ATGNN_THREADS=1: sequential inline execution) =="
ATGNN_THREADS=1 cargo test -q --workspace

echo "== cargo test (unrestricted thread pool) =="
cargo test -q --workspace

echo "== lint: no unwrap() in kernel code (crates/sparse, crates/tensor) =="
# Kernel code must propagate or assert with context, not unwrap. Test
# modules are exempt (split so this file's own literal doesn't match).
pattern='.unwrap'
pattern="${pattern}()"
bad=0
for crate in crates/sparse/src crates/tensor/src; do
    while IFS= read -r file; do
        # Strip everything from the test module down, then look for unwrap.
        if awk '/#\[cfg\(test\)\]/{exit} {print}' "$file" | grep -nF "$pattern" >/dev/null; then
            echo "forbidden $pattern in non-test code: $file"
            awk '/#\[cfg\(test\)\]/{exit} {print}' "$file" | grep -nF "$pattern"
            bad=1
        fi
    done < <(find "$crate" -name '*.rs')
done
if [ "$bad" -ne 0 ]; then
    echo "FAILED: kernel code must not use $pattern — return Result or expect() with context"
    exit 1
fi

echo "== lint: kernel crates must use the rt pool, not raw threads =="
# All kernel parallelism goes through the persistent runtime so thread
# counts, nnz-balanced scheduling and determinism stay centralized. Only
# rt.rs itself may spawn (crates/net's simulated cluster is exempt — it
# models ranks, not kernel parallelism).
bad=0
for crate in crates/sparse/src crates/tensor/src; do
    while IFS= read -r file; do
        [ "$(basename "$file")" = "rt.rs" ] && continue
        if grep -nE 'thread::(spawn|scope)|std::thread::(spawn|scope)' "$file" >/dev/null; then
            echo "forbidden raw thread use outside rt.rs: $file"
            grep -nE 'thread::(spawn|scope)|std::thread::(spawn|scope)' "$file"
            bad=1
        fi
    done < <(find "$crate" -name '*.rs')
done
if [ "$bad" -ne 0 ]; then
    echo "FAILED: kernel crates must dispatch through atgnn_tensor::rt"
    exit 1
fi

echo "== ci.sh: all checks passed =="
