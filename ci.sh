#!/usr/bin/env bash
# Local CI: formatting, lints, tests, and repo-specific hygiene checks.
# Everything runs offline (the workspace has no external dependencies).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (ATGNN_THREADS=1: sequential inline execution) =="
ATGNN_THREADS=1 cargo test -q --workspace

echo "== cargo test (unrestricted thread pool) =="
# The dev profile pins debug-assertions and overflow-checks on (see
# Cargo.toml), so this pass also exercises every debug-build invariant:
# the plan verifier in model constructors, the comm-volume check in the
# dist forward, and the kernels' internal debug_asserts.
cargo test -q --workspace

echo "== cargo test (forced RCM reorder + scalar microkernels) =="
# The whole suite must hold under the locality layer's other extreme:
# every model runs on an RCM-permuted graph (outputs mapped back through
# the inverse permutation) with the scalar reference kernels.
ATGNN_REORDER=rcm ATGNN_MICROKERNEL=scalar cargo test -q --workspace

echo "== atgnn-lint: source hygiene (replaces the former grep/awk lints) =="
# A real scanner (string/comment stripping, brace-tracked #[cfg(test)]
# module skipping, per-line allowlist annotations) enforcing:
#   * no unwrap() in kernel code (crates/sparse, crates/tensor)
#   * kernel crates use the rt pool, not raw threads (rt.rs exempt)
#   * layers route attention through ExecPlan, not staged kernels
#   * only the plan layer applies graph reorderings (.permute)
#   * dist code uses the deadline-bounded recv, not recv_unbounded
# Unlike the old awk strip (which stopped at the FIRST #[cfg(test)] and
# went blind for the rest of the file), the scanner resumes after each
# test module. Suppress a finding with `// atgnn-lint: allow(<rule>)`.
cargo run --release -q -p atgnn-lint -- --deny warnings

echo "== atgnn-lint --dag: abstract interpretation of every canned plan =="
# Shapes, virtual safety, fusion legality, semirings, determinism
# proofs, FP-stability intervals, alias legality, precision verdicts —
# over every model's forward+backward DAGs under both execution plans.
# The staged plan's materialization warnings are expected; only errors
# fail this pass.
cargo run --release -q -p atgnn-lint -- --dag

echo "== analysis_overhead smoke (plan-verifier cost harness) =="
# Smoke mode: small graph, no ratio assertion — verifies the analyzer
# sweep timing harness and the BENCH_analysis.json writer run. The full
# run (no ATGNN_SMOKE) asserts the sweep costs <1% of a training step.
ATGNN_SMOKE=1 cargo run --release -q -p atgnn-bench --bin analysis_overhead

echo "== chaos smoke (one bounded run per fault class) =="
# Injects each fault class (drop, delay, dup, corrupt, crash, hang) into
# a short distributed GAT training job and asserts the run heals with a
# bit-identical final loss. Every run is fenced by the plan's recv and
# barrier timeouts, so a liveness regression fails in seconds.
cargo run --release -q -p atgnn-bench --bin chaos

echo "== ablation_fusion smoke (staged vs one-pass harness) =="
# Smoke mode: smallest graph only, no timing assertions — verifies the
# staged/one-pass pipeline harness and the BENCH_fusion.json writer run.
ATGNN_SMOKE=1 cargo run --release -q -p atgnn-bench --bin ablation_fusion

echo "== locality smoke (reorder × microkernel sweep harness) =="
# Smoke mode: smallest graph only, no speedup assertion — verifies the
# reorder/microkernel sweep, the permuted-vs-unpermuted equivalence
# checks, and the BENCH_locality.json writer run.
ATGNN_SMOKE=1 cargo run --release -q -p atgnn-bench --bin locality

echo "== ci.sh: all checks passed =="
