//! Link prediction with attention embeddings — the protein-protein
//! interaction use case the paper's introduction motivates (A-GNN success
//! stories: AlphaFold, PPI prediction).
//!
//! A GAT encoder produces vertex embeddings; a dot-product decoder scores
//! candidate edges; the loss is binary cross-entropy over held-out
//! positive edges and sampled negatives, implemented as a custom
//! [`atgnn::loss::Loss`] — the full training loop (including the paper's
//! analytic backward passes) works unchanged with a user-defined loss.
//!
//! ```sh
//! cargo run --release --example link_prediction
//! ```

use atgnn::loss::Loss;
use atgnn::optimizer::Adam;
use atgnn::{GnnModel, ModelKind};
use atgnn_sparse::{Coo, Csr};
use atgnn_tensor::rng::Rng;
use atgnn_tensor::{gemm, init, Activation, Dense};

/// BCE over edge scores `σ(⟨h_u, h_v⟩)`: positives are held-out true
/// edges, negatives are sampled non-edges.
struct LinkPredictionLoss {
    positives: Vec<(usize, usize)>,
    negatives: Vec<(usize, usize)>,
}

impl LinkPredictionLoss {
    fn sigmoid(x: f64) -> f64 {
        1.0 / (1.0 + (-x).exp())
    }

    fn pairs(&self) -> impl Iterator<Item = (&(usize, usize), f64)> {
        self.positives
            .iter()
            .map(|e| (e, 1.0))
            .chain(self.negatives.iter().map(|e| (e, 0.0)))
    }

    /// Ranking quality: AUC estimated over all positive × negative pairs.
    fn auc(&self, h: &Dense<f64>) -> f64 {
        let score = |&(u, v): &(usize, usize)| gemm::dot(h.row(u), h.row(v));
        let pos: Vec<f64> = self.positives.iter().map(score).collect();
        let neg: Vec<f64> = self.negatives.iter().map(score).collect();
        let mut wins = 0usize;
        for &p in &pos {
            for &n in &neg {
                if p > n {
                    wins += 1;
                }
            }
        }
        wins as f64 / (pos.len() * neg.len()) as f64
    }
}

impl Loss<f64> for LinkPredictionLoss {
    fn value(&self, h: &Dense<f64>) -> f64 {
        let m = (self.positives.len() + self.negatives.len()) as f64;
        let mut total = 0.0;
        for (&(u, v), label) in self.pairs() {
            let p = Self::sigmoid(gemm::dot(h.row(u), h.row(v))).clamp(1e-12, 1.0 - 1e-12);
            total -= label * p.ln() + (1.0 - label) * (1.0 - p).ln();
        }
        total / m
    }

    fn gradient(&self, h: &Dense<f64>) -> Dense<f64> {
        // d/dh_u of BCE(σ(⟨h_u,h_v⟩)) = (σ−y)·h_v (and symmetrically).
        let m = (self.positives.len() + self.negatives.len()) as f64;
        let mut grad = Dense::zeros(h.rows(), h.cols());
        for (&(u, v), label) in self.pairs() {
            let coef = (Self::sigmoid(gemm::dot(h.row(u), h.row(v))) - label) / m;
            for (g, &hv) in grad.row_mut(u).iter_mut().zip(h.row(v)) {
                *g += coef * hv;
            }
            for (g, &hu) in grad.row_mut(v).iter_mut().zip(h.row(u)) {
                *g += coef * hu;
            }
        }
        grad
    }
}

fn main() {
    let mut rng = Rng::seed_from_u64(7);
    let n = 400;
    // A "protein interaction network": two-level community structure, so
    // that edges are genuinely predictable from the topology.
    let community = |v: usize| v * 8 / n;
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if community(u) == community(v) {
                0.06
            } else {
                0.002
            };
            if rng.next_f64() < p {
                edges.push((u as u32, v as u32));
            }
        }
    }
    // Hold out 15% of edges as positives; train the encoder on the rest.
    let holdout = edges.len() * 15 / 100;
    let positives: Vec<(usize, usize)> = edges[..holdout]
        .iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .collect();
    let train_edges: Vec<(u32, u32)> = edges[holdout..].to_vec();
    let mut coo = Coo::<f64>::from_edges(n, n, train_edges);
    coo.symmetrize_binary();
    let graph = Csr::from_coo(&coo);
    // Sampled negatives (non-edges).
    let edge_set: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
    let mut negatives = Vec::new();
    while negatives.len() < positives.len() {
        let u = rng.gen_index(n) as u32;
        let v = rng.gen_index(n) as u32;
        if u < v && !edge_set.contains(&(u, v)) {
            negatives.push((u as usize, v as usize));
        }
    }
    println!(
        "interaction graph: {} | {} held-out positives, {} sampled negatives",
        atgnn_graphgen::stats::DegreeStats::of(&graph),
        positives.len(),
        negatives.len()
    );

    let loss = LinkPredictionLoss {
        positives,
        negatives,
    };
    let x = init::features::<f64>(n, 16, 11);
    let a = GnnModel::<f64>::prepare_adjacency(ModelKind::Gat, &graph);
    let mut model = GnnModel::<f64>::uniform(ModelKind::Gat, &[16, 32, 16], Activation::Elu, 13);
    let mut opt = Adam::new(0.005);
    println!(
        "epoch   0: AUC {:.3} (untrained)",
        loss.auc(&model.inference(&a, &x))
    );
    for epoch in 1..=60 {
        let l = model.train_step(&a, &x, &loss, &mut opt);
        if epoch % 15 == 0 {
            let emb = model.inference(&a, &x);
            println!("epoch {epoch:>3}: BCE {l:.4}  AUC {:.3}", loss.auc(&emb));
        }
    }
    let final_auc = loss.auc(&model.inference(&a, &x));
    println!("final AUC {final_auc:.3} (0.5 = random ranking)");
    assert!(
        final_auc > 0.6,
        "embeddings should rank held-out edges above non-edges"
    );
}
