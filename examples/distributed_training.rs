//! Distributed full-batch training on the simulated cluster: the paper's
//! 2D-partitioned, communication-minimizing execution (Section 6.3), with
//! per-phase communication accounting and the global-vs-local volume
//! comparison of Section 8.4.
//!
//! ```sh
//! cargo run --release --example distributed_training
//! ```

use atgnn::ModelKind;
use atgnn_baseline::halo::{HaloPlan, LocalDistModel, Partition1d};
use atgnn_dist::{DistContext, DistGnnModel};
use atgnn_graphgen::kronecker;
use atgnn_net::{Cluster, MachineModel};
use atgnn_tensor::{init, ops, Activation};

fn main() {
    // The paper's winning regime d ∈ ω(√p): average degree well above
    // √p, so the local formulation's halo saturates while the global
    // formulation's volume keeps shrinking as nk/√p.
    let n = 1 << 11;
    let k = 16;
    let p = 64;
    let a = kronecker::adjacency::<f32>(n, n * 64, 9);
    let x = init::features::<f32>(n, k, 3);
    let target = init::features::<f32>(n, k, 5);
    println!(
        "graph: {} | simulating p={p} ranks on a {}x{} grid",
        atgnn_graphgen::stats::DegreeStats::of(&a),
        (p as f64).sqrt() as usize,
        (p as f64).sqrt() as usize
    );

    // --- Global formulation: 2D partition + block collectives. ---
    let (losses, gstats) = {
        let (a, x, target) = (a.clone(), x.clone(), target.clone());
        Cluster::run(p, move |comm| {
            let ctx = DistContext::new(&comm, &a).expect("square grid and adjacency");
            let mut model =
                DistGnnModel::<f32>::uniform(ModelKind::Gat, &[k, k, k], Activation::Elu, 7);
            let (c0, c1) = ctx.col_range();
            let x_j = x.slice_rows(c0, c1 - c0);
            let t_j = target.slice_rows(c0, c1 - c0);
            let mut losses = Vec::new();
            for _ in 0..5 {
                losses.push(model.train_step_mse(&ctx, &x_j, &t_j, 0.05, k));
            }
            losses
        })
    };
    println!(
        "global-formulation losses (identical on every rank): {:?}",
        losses[0]
    );
    println!("global comm: {gstats}");
    for (phase, bytes) in &gstats.phase_bytes {
        println!("  phase {phase:<16} {bytes} B");
    }

    // --- Local formulation (DistDGL-style) for the same training. ---
    let (_, lstats) = {
        let (a, x, target) = (a.clone(), x.clone(), target.clone());
        Cluster::run(p, move |comm| {
            let part = Partition1d { n, p: comm.size() };
            let plan = HaloPlan::build(&a, part, comm.rank());
            let model =
                LocalDistModel::<f32>::uniform(ModelKind::Gat, &[k, k, k], Activation::Elu, 7);
            let (lo, hi) = part.bounds(comm.rank());
            let x_own = x.slice_rows(lo, hi - lo);
            for _ in 0..5 {
                let (out, caches) = model.forward_cached(&plan, &comm, &x_own);
                let diff = ops::sub(&out, &target.slice_rows(lo, hi - lo));
                let grad = ops::scale(&diff, 2.0 / (n * k) as f32);
                model.backward(&plan, &comm, &caches, &grad);
            }
        })
    };
    println!("local  comm: {lstats}");

    // --- The headline comparison. ---
    let machine = MachineModel::aries();
    println!(
        "max-per-rank volume: global {} B vs local {} B ({:.2}x)",
        gstats.max_rank_bytes(),
        lstats.max_rank_bytes(),
        lstats.max_rank_bytes() as f64 / gstats.max_rank_bytes() as f64
    );
    println!(
        "modeled comm time on a Cray-Aries-like network: global {:.2} µs vs local {:.2} µs",
        1e6 * machine.comm_time(gstats.max_rank_bytes(), gstats.max_supersteps()),
        1e6 * machine.comm_time(lstats.max_rank_bytes(), lstats.max_supersteps()),
    );
}
