//! Quickstart: build a graph, train a GAT with the global tensor
//! formulation, run inference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use atgnn::loss::SoftmaxCrossEntropy;
use atgnn::optimizer::Adam;
use atgnn::{GnnModel, ModelKind};
use atgnn_graphgen::kronecker;
use atgnn_tensor::{init, Activation};

fn main() {
    // 1. A heavy-tail Kronecker graph (the paper's B0 dataset family).
    let n = 1 << 10;
    let a = kronecker::adjacency::<f64>(n, n * 8, 42);
    println!("graph: {}", atgnn_graphgen::stats::DegreeStats::of(&a));

    // 2. Random features and a synthetic 4-class labeling derived from
    //    the vertex id (purely to exercise the pipeline end to end).
    let k_in = 16;
    let classes = 4;
    let x = init::features::<f64>(n, k_in, 7);
    let labels: Vec<usize> = (0..n).map(|v| v % classes).collect();
    let loss = SoftmaxCrossEntropy::dense(labels);

    // 3. A 3-layer GAT in the global formulation:
    //    Ψ = sm(A ⊙ LeakyReLU(u 1ᵀ + 1 vᵀ)), Z = Ψ H W per layer,
    //    with the adjacency prepared per model (GAT adds self-loops).
    let kind = ModelKind::Gat;
    let a = GnnModel::<f64>::prepare_adjacency(kind, &a);
    let mut model = GnnModel::<f64>::uniform(kind, &[k_in, 32, 16, classes], Activation::Elu, 3);
    println!(
        "model: {} layers, {} parameters",
        model.depth(),
        model.param_count()
    );

    // 4. Full-batch training (forward + the paper's novel backward
    //    formulations + Adam update).
    let mut opt = Adam::new(0.01);
    for epoch in 0..30 {
        let l = model.train_step(&a, &x, &loss, &mut opt);
        if epoch % 5 == 0 {
            let out = model.inference(&a, &x);
            println!(
                "epoch {epoch:>3}: loss {l:.4}  accuracy {:.1}%",
                100.0 * loss.accuracy(&out)
            );
        }
    }

    // 5. Inference mode — no intermediate caching, as the artifact's
    //    `--inference` flag.
    let out = model.inference(&a, &x);
    println!(
        "final accuracy {:.1}% (output shape {}x{})",
        100.0 * loss.accuracy(&out),
        out.rows(),
        out.cols()
    );
}
