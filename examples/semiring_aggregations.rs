//! Programmability (paper Eq. 1 and Section 4.3): build GNN layers from
//! `Ψ`, `⊕`, and `Φ` without writing a kernel.
//!
//! This example assembles four different models from the same parts —
//! sum, min, max, and average aggregation over the semirings of Section
//! 4.3, plus a custom `Ψ` — and shows why the `Φ ∘ ⊕` composition order
//! belongs to the model designer.
//!
//! ```sh
//! cargo run --release --example semiring_aggregations
//! ```

use atgnn::generic::{ComposeOrder, GenericLayer, Phi, Psi};
use atgnn_graphgen::kronecker;
use atgnn_sparse::{norm, Average, Csr, MaxPlus, MinPlus, Real};
use atgnn_tensor::{init, Activation, Dense};

fn main() {
    let n = 256;
    let a = kronecker::adjacency::<f64>(n, n * 6, 11);
    let h = init::features::<f64>(n, 8, 3);
    let w = init::glorot::<f64>(8, 8, 5);

    // Sum aggregation over the real semiring — a plain C-GNN layer.
    let sum_layer = GenericLayer {
        psi: Psi::Adjacency,
        aggregate: Real,
        phi: Phi::Linear(w.clone()),
        order: ComposeOrder::UpdateThenAggregate,
        activation: Activation::Relu,
    };
    report(
        "sum (real semiring)",
        &sum_layer.forward(&norm::sym_normalize(&a), &h),
    );

    // Min/max aggregation over the tropical semirings: the adjacency
    // values become the tropical multiplicative identity (0) first.
    let trop = norm::to_aggregation_weights(&a, 0.0);
    let min_layer = GenericLayer {
        psi: Psi::Adjacency,
        aggregate: MinPlus,
        phi: Phi::Identity,
        order: ComposeOrder::AggregateThenUpdate,
        activation: Activation::Identity,
    };
    report("min (tropical)", &min_layer.forward(&trop, &h));
    let max_layer = GenericLayer {
        psi: Psi::Adjacency,
        aggregate: MaxPlus,
        phi: Phi::Identity,
        order: ComposeOrder::AggregateThenUpdate,
        activation: Activation::Identity,
    };
    report("max (tropical)", &max_layer.forward(&trop, &h));

    // Average aggregation over the pair semiring.
    let avg_layer = GenericLayer {
        psi: Psi::Adjacency,
        aggregate: Average,
        phi: Phi::Identity,
        order: ComposeOrder::AggregateThenUpdate,
        activation: Activation::Identity,
    };
    report("average (pair semiring)", &avg_layer.forward(&a, &h));

    // Attention as a plug-in Ψ: cosine scores with a softmax, the AGNN
    // formulation, assembled from parts.
    let attention_layer = GenericLayer {
        psi: Psi::Cosine { beta: 1.5 },
        aggregate: Real,
        phi: Phi::Linear(w.clone()),
        order: ComposeOrder::UpdateThenAggregate,
        activation: Activation::Elu,
    };
    report("cosine attention Ψ", &attention_layer.forward(&a, &h));

    // A custom Ψ closure: degree-weighted uniform attention.
    let custom = GenericLayer {
        psi: Psi::Custom(Box::new(|a: &Csr<f64>, _h: &Dense<f64>| {
            norm::row_normalize(a)
        })),
        aggregate: Real,
        phi: Phi::Mlp(vec![
            (init::glorot(8, 16, 7), Activation::Relu),
            (init::glorot(16, 8, 9), Activation::Identity),
        ]),
        order: ComposeOrder::AggregateThenUpdate,
        activation: Activation::Identity,
    };
    report("custom Ψ + MLP Φ (GIN-style)", &custom.forward(&a, &h));

    // ⊕ and Φ do not commute in general (Section 4): the tropical max
    // of a projection is not the projection of the tropical max.
    let agg_first = GenericLayer {
        psi: Psi::Adjacency,
        aggregate: MaxPlus,
        phi: Phi::Linear(w.clone()),
        order: ComposeOrder::AggregateThenUpdate,
        activation: Activation::Identity,
    }
    .forward(&trop, &h);
    let proj_first = GenericLayer {
        psi: Psi::Adjacency,
        aggregate: MaxPlus,
        phi: Phi::Linear(w),
        order: ComposeOrder::UpdateThenAggregate,
        activation: Activation::Identity,
    }
    .forward(&trop, &h);
    println!(
        "\nΦ∘⊕ vs ⊕∘Φ over the max-plus semiring differ by {:.3} — the order is a modeling choice",
        agg_first.max_abs_diff(&proj_first)
    );
}

fn report(name: &str, out: &Dense<f64>) {
    let mean = atgnn_tensor::ops::total_sum(out) / out.len() as f64;
    println!(
        "{name:<28} -> {}x{} output, mean {mean:+.4}",
        out.rows(),
        out.cols()
    );
}
