//! Semi-supervised node classification on a synthetic citation-style
//! graph — the workload that motivated GAT in the first place (the
//! paper's intro: A-GNNs are empirically stronger than C-GNNs).
//!
//! The graph is a stochastic block model with four communities: papers
//! cite mostly within their field, features are noisy community
//! indicators, and only 5% of the vertices are labeled. The example
//! trains GAT, AGNN, VA and GCN on identical data and prints test
//! accuracy per model.
//!
//! ```sh
//! cargo run --release --example citation_classification
//! ```

use atgnn::loss::SoftmaxCrossEntropy;
use atgnn::optimizer::Adam;
use atgnn::{GnnModel, ModelKind};
use atgnn_sparse::{Coo, Csr};
use atgnn_tensor::rng::Rng;
use atgnn_tensor::{Activation, Dense};

const COMMUNITIES: usize = 4;
const N: usize = 800;
const FEATURES: usize = 32;

fn stochastic_block_model(rng: &mut Rng) -> (Csr<f64>, Vec<usize>) {
    let labels: Vec<usize> = (0..N).map(|v| v * COMMUNITIES / N).collect();
    let mut coo = Coo::new(N, N);
    for u in 0..N {
        for v in (u + 1)..N {
            let p = if labels[u] == labels[v] { 0.02 } else { 0.001 };
            if rng.next_f64() < p {
                coo.push(u as u32, v as u32, 1.0);
                coo.push(v as u32, u as u32, 1.0);
            }
        }
    }
    coo.dedup_binary();
    (Csr::from_coo(&coo), labels)
}

fn noisy_features(labels: &[usize], rng: &mut Rng) -> Dense<f64> {
    Dense::from_fn(N, FEATURES, |v, f| {
        let signal = if f % COMMUNITIES == labels[v] {
            0.8
        } else {
            0.0
        };
        signal + rng.next_f64() * 1.2 - 0.6
    })
}

fn main() {
    let mut rng = Rng::seed_from_u64(2023);
    let (graph, labels) = stochastic_block_model(&mut rng);
    let x = noisy_features(&labels, &mut rng);
    println!(
        "citation graph: {}",
        atgnn_graphgen::stats::DegreeStats::of(&graph)
    );

    // Semi-supervised: only 5% of vertices carry a training label; the
    // rest are the test set.
    let train_mask: Vec<bool> = (0..N).map(|_| rng.next_f64() < 0.05).collect();
    let train_labels: Vec<Option<usize>> = labels
        .iter()
        .zip(&train_mask)
        .map(|(&l, &m)| if m { Some(l) } else { None })
        .collect();
    let test_labels: Vec<Option<usize>> = labels
        .iter()
        .zip(&train_mask)
        .map(|(&l, &m)| if m { None } else { Some(l) })
        .collect();
    let train_loss = SoftmaxCrossEntropy::new(train_labels);
    let test_loss = SoftmaxCrossEntropy::new(test_labels);
    println!(
        "labeled: {} / {N} vertices",
        train_mask.iter().filter(|&&m| m).count()
    );

    for kind in [
        ModelKind::Gat,
        ModelKind::Agnn,
        ModelKind::Va,
        ModelKind::Gcn,
    ] {
        let a = GnnModel::<f64>::prepare_adjacency(kind, &graph);
        let mut model =
            GnnModel::<f64>::uniform(kind, &[FEATURES, 16, COMMUNITIES], Activation::Elu, 5);
        let mut opt = Adam::new(0.01);
        let mut last_train = 0.0;
        for _ in 0..120 {
            last_train = model.train_step(&a, &x, &train_loss, &mut opt);
        }
        let out = model.inference(&a, &x);
        println!(
            "{:<5} train-loss {:.4}  test accuracy {:.1}%",
            kind.name(),
            last_train,
            100.0 * test_loss.accuracy(&out)
        );
    }
}
