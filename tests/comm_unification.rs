//! One communication cost function, three consumers.
//!
//! The analyzer's `comm` module owns the per-layer volume estimate
//! `nk·(1/Px + 1/Py) + k·k'`. The distributed planner's grid choice
//! (`atgnn_dist::Grid::from_ranks`), the plan-time comm-volume lint, and
//! the net simulator's closed-form predictor must all agree with it —
//! these tests pin the three against each other so the estimators cannot
//! silently drift apart.

use atgnn::analyze::comm::{self, GridSpec, BOUND_SLACK};
use atgnn_dist::{Grid, GridError};
use atgnn_net::model::predict;

#[test]
fn best_grid_of_a_perfect_square_is_the_square_grid() {
    for p in [1usize, 4, 9, 16, 64, 256, 1024] {
        assert_eq!(comm::best_grid(p), GridSpec::square(p), "p = {p}");
    }
}

#[test]
fn the_dist_planner_uses_the_analyzer_grid() {
    // Accepted rank counts land on exactly the analyzer's best grid…
    for p in [1usize, 4, 9, 16, 64, 256] {
        let g = Grid::from_ranks(p).expect("perfect square");
        let best = comm::best_grid(p);
        assert_eq!((g.q, g.q), (best.px, best.py), "p = {p}");
    }
    // …and a rank count whose volume-minimizing factorization is
    // rectangular is rejected rather than rounded.
    for p in [2usize, 6, 8, 12, 15] {
        let best = comm::best_grid(p);
        assert_ne!(best.px, best.py, "p = {p} should factor rectangularly");
        assert_eq!(Grid::from_ranks(p), Err(GridError::NotSquare(p)));
    }
}

#[test]
fn square_grids_sit_under_the_slacked_global_bound() {
    let (n, k) = (4096usize, 128usize);
    for p in [1usize, 4, 16, 64, 256] {
        let est = comm::layer_volume_words(n, k, k, GridSpec::square(p));
        let bound = comm::global_bound_words(n, k, k, p);
        assert!(
            est <= BOUND_SLACK * bound,
            "p = {p}: estimate {est} exceeds {BOUND_SLACK}×{bound}"
        );
        // A degenerate 1D grid with the same rank count must NOT fit the
        // bound once p is large enough for 1/√p ≪ 1 — that is exactly the
        // regression the lint exists to catch.
        if p >= 16 {
            let row = comm::layer_volume_words(n, k, k, GridSpec::new(1, p));
            assert!(row > BOUND_SLACK * bound, "p = {p}: 1×{p} grid slipped by");
        }
    }
}

#[test]
fn analyzer_bound_matches_the_net_simulator_predictor() {
    // The net crate's predictor uses k_in = k_out = k; with that
    // specialization the analyzer's generalized bound must agree exactly.
    for (n, k, p) in [
        (1024usize, 32usize, 4usize),
        (4096, 128, 64),
        (65536, 256, 1024),
    ] {
        let analyzer = comm::global_bound_words(n, k, k, p);
        let simulator = predict::global_volume_words(n, k, p);
        assert!(
            (analyzer - simulator).abs() <= 1e-9 * simulator,
            "n={n} k={k} p={p}: analyzer {analyzer} vs simulator {simulator}"
        );
    }
}
