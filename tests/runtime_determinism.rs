//! Runtime correctness and determinism guarantees.
//!
//! Two properties of the persistent worker-pool runtime are load-bearing:
//!
//! 1. the parallel `spmm_t` (partial-buffer scatter + tree reduction)
//!    computes the same product as a plain sequential scatter, on both
//!    uniform and heavily skewed graphs;
//! 2. training results are *bit-identical* across `ATGNN_THREADS`
//!    settings, because every kernel derives its chunk grid and its
//!    parallel/sequential path choice from the problem size alone.

use atgnn::loss::Mse;
use atgnn::optimizer::Sgd;
use atgnn::{GnnModel, ModelKind};
use atgnn_graphgen::{erdos_renyi, kronecker};
use atgnn_sparse::{spmm, Csr};
use atgnn_tensor::{init, rt, Activation, Dense};

/// Plain sequential AᵀH scatter — the obviously-correct reference.
fn spmm_t_reference(a: &Csr<f64>, h: &Dense<f64>) -> Dense<f64> {
    let mut out = Dense::zeros(a.cols(), h.cols());
    for i in 0..a.rows() {
        let (cols, vals) = a.row(i);
        let hrow = h.row(i);
        for (&j, &av) in cols.iter().zip(vals) {
            let orow = out.row_mut(j as usize);
            for (o, &hv) in orow.iter_mut().zip(hrow) {
                *o += av * hv;
            }
        }
    }
    out
}

#[test]
fn parallel_spmm_t_matches_sequential_scatter() {
    let k = 8;
    // Uniform (Erdős–Rényi) and skewed (Kronecker power-law) patterns;
    // both are large enough to take the partial-buffer scatter path
    // (nnz·k ≥ 64k and nnz ≥ 2n with the default thresholds).
    let graphs = [
        (
            "erdos_renyi",
            erdos_renyi::adjacency::<f64>(2000, 32_000, 42),
        ),
        ("kronecker", kronecker::adjacency::<f64>(2048, 32_768, 7)),
    ];
    for (name, a) in graphs {
        assert!(
            a.nnz() * k >= 64 * 1024 && a.nnz() >= 2 * a.cols(),
            "{name}: graph too small to exercise the parallel path (nnz={})",
            a.nnz()
        );
        let h = Dense::from_fn(a.rows(), k, |i, j| {
            ((i * 31 + j * 17) % 23) as f64 / 11.0 - 1.0
        });
        let got = spmm::spmm_t(&a, &h);
        let want = spmm_t_reference(&a, &h);
        // The tree reduction reassociates the FP sums, so compare with a
        // tolerance rather than bitwise.
        assert!(
            got.max_abs_diff(&want) < 1e-9,
            "{name}: parallel scatter diverged from the sequential reference"
        );
    }
}

/// One test (not several) so the in-process `rt::set_threads` sweep cannot
/// race with itself under the parallel test harness.
#[test]
fn training_is_bit_identical_across_thread_counts() {
    // Sized to cross the parallel thresholds of spmm (rows·k ≥ 8k),
    // spmm_t (nnz·k ≥ 64k), matmul (m·n ≥ 16k) and matmul_tn.
    let n = 512;
    let a = kronecker::adjacency::<f64>(n, 4096, 3);
    let x = init::features::<f64>(n, 32, 5);
    let target = init::features::<f64>(n, 16, 7);
    let max = rt::max_threads();

    // Kernel-level check first: spmm_t bits must not move with threads.
    let baseline_bits: Vec<u64> = {
        rt::set_threads(1);
        spmm::spmm_t(&a, &x)
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    };

    let mut runs: Vec<(usize, Vec<u64>)> = Vec::new();
    for threads in [1usize, 2, 8] {
        rt::set_threads(threads);
        let bits: Vec<u64> = spmm::spmm_t(&a, &x)
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(
            bits,
            baseline_bits,
            "spmm_t bits changed between 1 and {threads} threads (active {})",
            rt::num_threads()
        );

        let prepared = GnnModel::<f64>::prepare_adjacency(ModelKind::Gat, &a);
        let mut model =
            GnnModel::<f64>::uniform(ModelKind::Gat, &[32, 32, 16], Activation::Tanh, 9);
        let loss = Mse::new(target.clone());
        let mut opt = Sgd::new(0.01);
        let losses: Vec<u64> = (0..5)
            .map(|_| model.train_step(&prepared, &x, &loss, &mut opt).to_bits())
            .collect();
        runs.push((threads, losses));
    }
    rt::set_threads(max);

    let (_, reference) = &runs[0];
    for (threads, losses) in &runs[1..] {
        assert_eq!(
            losses, reference,
            "training losses diverged between 1 and {threads} threads"
        );
    }
}
