//! Property-based tests over the core data structures and the paper's
//! mathematical invariants, with randomly generated graphs, features and
//! grid shapes.
//!
//! Each property runs over a set of seeded random cases (the in-repo
//! ChaCha8 [`Rng`]); a failing case is reproducible from the seed in the
//! assertion message.

use atgnn::{GnnModel, ModelKind};
use atgnn_dist::{DistContext, DistGnnModel};
use atgnn_net::Cluster;
use atgnn_sparse::{masked, norm, sddmm, spmm, Average, Coo, Csr, MaxPlus, MinPlus};
use atgnn_tensor::rng::Rng;
use atgnn_tensor::{blocks, gemm, init, ops, Activation};

/// Number of random cases per light-weight property.
const CASES: u64 = 48;
/// Number of random cases for properties that spawn simulated clusters.
const CLUSTER_CASES: u64 = 8;

/// A random sparse matrix: dimensions in [1, 24), up to 60 entries.
fn arb_coo(rng: &mut Rng) -> Coo<f64> {
    let rows = rng.gen_range(1, 24);
    let cols = rng.gen_range(1, 24);
    let nnz = rng.gen_index(60);
    let mut coo = Coo::new(rows, cols);
    for _ in 0..nnz {
        coo.push(
            rng.gen_index(rows) as u32,
            rng.gen_index(cols) as u32,
            rng.uniform(-2.0, 2.0),
        );
    }
    coo
}

/// A random square 0/1 adjacency with n in [4, 20).
fn arb_adjacency(rng: &mut Rng) -> Csr<f64> {
    let n = rng.gen_range(4, 20);
    let m = rng.gen_range(1, 80);
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| (rng.gen_index(n) as u32, rng.gen_index(n) as u32))
        .filter(|&(a, b)| a != b)
        .collect();
    let mut coo = Coo::<f64>::from_edges(n, n, edges);
    coo.dedup_binary();
    Csr::from_coo(&coo)
}

#[test]
fn coo_csr_round_trip() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x100 + case);
        let coo = arb_coo(&mut rng);
        let mut summed = coo.clone();
        summed.sort_dedup_sum();
        let csr = Csr::from_coo(&coo);
        let back = csr.to_coo();
        // Round trip through CSR equals the sorted+deduplicated COO.
        assert_eq!(&back.entries, &summed.entries, "case {case}");
        for (a, b) in back.values.iter().zip(&summed.values) {
            assert!((a - b).abs() < 1e-12, "case {case}");
        }
    }
}

#[test]
fn transpose_is_involutive() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x200 + case);
        let csr = Csr::from_coo(&arb_coo(&mut rng));
        let tt = csr.transpose().transpose();
        assert!(csr.same_pattern(&tt), "case {case}");
        assert_eq!(csr.values(), tt.values(), "case {case}");
    }
}

#[test]
fn spmm_matches_dense_reference() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x300 + case);
        let a = Csr::from_coo(&arb_coo(&mut rng));
        let h = init::uniform::<f64>(a.cols(), 3, -1.0, 1.0, case);
        let want = gemm::matmul(&a.to_dense(), &h);
        assert!(
            spmm::spmm(&a, &h).max_abs_diff(&want) < 1e-10,
            "case {case}"
        );
    }
}

#[test]
fn spmm_t_matches_transposed_reference() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x400 + case);
        let a = Csr::from_coo(&arb_coo(&mut rng));
        let h = init::uniform::<f64>(a.rows(), 3, -1.0, 1.0, case);
        let want = gemm::matmul(&a.transpose().to_dense(), &h);
        assert!(
            spmm::spmm_t(&a, &h).max_abs_diff(&want) < 1e-10,
            "case {case}"
        );
    }
}

#[test]
fn tropical_aggregations_bound_real_features() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x500 + case);
        let a = arb_adjacency(&mut rng);
        // min ≤ every aggregated feature ≤ max, vertex-wise, over the
        // tropical semirings with zero weights.
        let trop = norm::to_aggregation_weights(&a, 0.0);
        let h = init::uniform::<f64>(a.cols(), 2, -1.0, 1.0, case);
        let mins = spmm::spmm_semiring(&MinPlus, &trop, &h);
        let maxs = spmm::spmm_semiring(&MaxPlus, &trop, &h);
        let avgs = spmm::spmm_semiring(&Average, &trop.map_values(|_| 1.0), &h);
        for i in 0..a.rows() {
            if a.row_nnz(i) == 0 {
                continue;
            }
            for f in 0..2 {
                assert!(mins[(i, f)] <= maxs[(i, f)] + 1e-12, "case {case}");
                assert!(avgs[(i, f)] >= mins[(i, f)] - 1e-9, "case {case}");
                assert!(avgs[(i, f)] <= maxs[(i, f)] + 1e-9, "case {case}");
            }
        }
    }
}

#[test]
fn graph_softmax_rows_are_distributions() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x600 + case);
        let x = Csr::from_coo(&arb_coo(&mut rng));
        let sm = masked::row_softmax(&x);
        for r in 0..x.rows() {
            let (_, vals) = sm.row(r);
            if vals.is_empty() {
                continue;
            }
            let total: f64 = vals.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "case {case}");
            for &v in vals {
                assert!((0.0..=1.0 + 1e-12).contains(&v), "case {case}");
            }
        }
    }
}

#[test]
fn sddmm_equals_masked_dense_product() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x700 + case);
        let a = arb_adjacency(&mut rng);
        let x = init::uniform::<f64>(a.rows(), 3, -1.0, 1.0, case);
        let y = init::uniform::<f64>(a.cols(), 3, -1.0, 1.0, case ^ 1);
        let got = sddmm::sddmm(&a, &x, &y).to_dense();
        let want = ops::hadamard(&a.to_dense(), &gemm::matmul_nt(&x, &y));
        assert!(got.max_abs_diff(&want) < 1e-10, "case {case}");
    }
}

#[test]
fn rep_sum_rs_identities() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x800 + case);
        let len = rng.gen_range(1, 12);
        let cols = rng.gen_range(1, 6);
        let x = init::uniform::<f64>(len, cols, -1.0, 1.0, case);
        // sum(rep(v)) = cols * v
        let v: Vec<f64> = (0..len).map(|i| i as f64 * 0.5 - 1.0).collect();
        let summed = blocks::row_sums(&blocks::rep(&v, cols));
        for (s, &vi) in summed.iter().zip(&v) {
            assert!((s - cols as f64 * vi).abs() < 1e-10, "case {case}");
        }
        // rs(x) = rep(sum(x))
        let rs = blocks::rs(&x, 4);
        let rep = blocks::rep(&blocks::row_sums(&x), 4);
        assert!(rs.max_abs_diff(&rep) < 1e-12, "case {case}");
    }
}

#[test]
fn gcn_normalization_spectral_bound() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x900 + case);
        let a = arb_adjacency(&mut rng);
        // Every entry of D^{-1/2}(A+I)D^{-1/2} lies in (0, 1].
        let ahat = norm::sym_normalize(&norm::add_self_loops(&a));
        for &v in ahat.values() {
            assert!(v > 0.0 && v <= 1.0 + 1e-12, "case {case}");
        }
        // Row sums of the row-normalized matrix are 1 (or 0).
        let rn = norm::row_normalize(&a);
        for s in masked::row_sums(&rn) {
            assert!(s.abs() < 1e-12 || (s - 1.0).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn block_partition_is_lossless() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xA00 + case);
        let a = arb_adjacency(&mut rng);
        let q = rng.gen_range(1, 4);
        // Slicing into q×q blocks and reassembling preserves every entry.
        let n = a.rows();
        let bounds = |b: usize| (b * n / q, (b + 1) * n / q);
        let mut total = 0usize;
        for i in 0..q {
            for j in 0..q {
                let (r0, r1) = bounds(i);
                let (c0, c1) = bounds(j);
                let blk = a.block(r0, r1, c0, c1);
                total += blk.nnz();
                for r in 0..blk.rows() {
                    let (cols, vals) = blk.row(r);
                    for (&c, &v) in cols.iter().zip(vals) {
                        assert_eq!(a.get(r0 + r, c0 + c as usize), v, "case {case}");
                    }
                }
            }
        }
        assert_eq!(total, a.nnz(), "case {case}");
    }
}

#[test]
fn distributed_inference_equals_sequential_on_random_graphs() {
    // Heavier cases: spawn simulated clusters, so fewer iterations.
    for case in 0..CLUSTER_CASES {
        let mut rng = Rng::seed_from_u64(0xB00 + case);
        let a = arb_adjacency(&mut rng);
        let kind = [
            ModelKind::Va,
            ModelKind::Agnn,
            ModelKind::Gat,
            ModelKind::Gcn,
        ][rng.gen_index(4)];
        let q = rng.gen_range(1, 4);
        let prepared = GnnModel::<f64>::prepare_adjacency(kind, &a);
        let n = prepared.rows();
        let x = init::uniform::<f64>(n, 3, -1.0, 1.0, case);
        let seq = GnnModel::<f64>::uniform(kind, &[3, 4, 2], Activation::Tanh, case)
            .inference(&prepared, &x);
        let p = q * q;
        let (errs, _) = Cluster::run(p, move |comm| {
            let ctx = DistContext::new(&comm, &prepared).expect("square grid and adjacency");
            let model = DistGnnModel::<f64>::uniform(kind, &[3, 4, 2], Activation::Tanh, case);
            let (c0, c1) = ctx.col_range();
            let out = model.inference(&ctx, &x.slice_rows(c0, c1 - c0));
            out.max_abs_diff(&seq.slice_rows(c0, c1 - c0))
        });
        for e in errs {
            assert!(e < 1e-9, "case {case} {kind:?} p={p}: {e}");
        }
    }
}

#[test]
fn halo_engine_equals_sequential_on_random_graphs() {
    use atgnn_baseline::halo::{HaloPlan, LocalDistModel, Partition1d};
    for case in 0..CLUSTER_CASES {
        let mut rng = Rng::seed_from_u64(0xC00 + case);
        let a = arb_adjacency(&mut rng);
        let kind = [
            ModelKind::Va,
            ModelKind::Agnn,
            ModelKind::Gat,
            ModelKind::Gcn,
        ][rng.gen_index(4)];
        let p = rng.gen_range(1, 5);
        let prepared = GnnModel::<f64>::prepare_adjacency(kind, &a);
        let n = prepared.rows();
        let x = init::uniform::<f64>(n, 3, -1.0, 1.0, case);
        let seq = GnnModel::<f64>::uniform(kind, &[3, 4, 2], Activation::Tanh, case)
            .inference(&prepared, &x);
        let (errs, _) = Cluster::run(p, move |comm| {
            let part = Partition1d { n, p: comm.size() };
            let plan = HaloPlan::build(&prepared, part, comm.rank());
            let model = LocalDistModel::<f64>::uniform(kind, &[3, 4, 2], Activation::Tanh, case);
            let (lo, hi) = part.bounds(comm.rank());
            let out = model.inference(&plan, &comm, &x.slice_rows(lo, hi - lo));
            out.max_abs_diff(&seq.slice_rows(lo, hi - lo))
        });
        for e in errs {
            assert!(e < 1e-9, "case {case} {kind:?} p={p}: {e}");
        }
    }
}

#[test]
fn dense_gemm_associativity() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xD00 + case);
        let n = rng.gen_range(1, 8);
        let a = init::uniform::<f64>(n, n, -1.0, 1.0, case);
        let b = init::uniform::<f64>(n, n, -1.0, 1.0, case ^ 2);
        let c = init::uniform::<f64>(n, n, -1.0, 1.0, case ^ 3);
        let left = gemm::matmul(&gemm::matmul(&a, &b), &c);
        let right = gemm::matmul(&a, &gemm::matmul(&b, &c));
        assert!(left.max_abs_diff(&right) < 1e-9, "case {case}");
    }
}
