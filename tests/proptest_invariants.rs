//! Property-based tests over the core data structures and the paper's
//! mathematical invariants, with randomly generated graphs, features and
//! grid shapes.

use atgnn::{GnnModel, ModelKind};
use atgnn_dist::{DistContext, DistGnnModel};
use atgnn_net::Cluster;
use atgnn_sparse::{masked, norm, sddmm, spmm, Average, Coo, Csr, MaxPlus, MinPlus};
use atgnn_tensor::{blocks, gemm, init, ops, Activation};
use proptest::prelude::*;

/// A random sparse matrix: dimensions in [1, 24], up to 60 entries.
fn arb_coo() -> impl Strategy<Value = Coo<f64>> {
    (1usize..24, 1usize..24).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            ((0..rows as u32), (0..cols as u32), -2.0f64..2.0),
            0..60,
        )
        .prop_map(move |triplets| {
            let mut coo = Coo::new(rows, cols);
            for (r, c, v) in triplets {
                coo.push(r, c, v);
            }
            coo
        })
    })
}

/// A random square 0/1 adjacency with n in [4, 20].
fn arb_adjacency() -> impl Strategy<Value = Csr<f64>> {
    (4usize..20).prop_flat_map(|n| {
        proptest::collection::vec(((0..n as u32), (0..n as u32)), 1..80).prop_map(move |edges| {
            let edges: Vec<(u32, u32)> = edges.into_iter().filter(|&(a, b)| a != b).collect();
            let mut coo = Coo::<f64>::from_edges(n, n, edges);
            coo.dedup_binary();
            Csr::from_coo(&coo)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coo_csr_round_trip(coo in arb_coo()) {
        let mut summed = coo.clone();
        summed.sort_dedup_sum();
        let csr = Csr::from_coo(&coo);
        let back = csr.to_coo();
        // Round trip through CSR equals the sorted+deduplicated COO.
        prop_assert_eq!(&back.entries, &summed.entries);
        for (a, b) in back.values.iter().zip(&summed.values) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_is_involutive(coo in arb_coo()) {
        let csr = Csr::from_coo(&coo);
        let tt = csr.transpose().transpose();
        prop_assert!(csr.same_pattern(&tt));
        prop_assert_eq!(csr.values(), tt.values());
    }

    #[test]
    fn spmm_matches_dense_reference(coo in arb_coo(), seed in 0u64..1000) {
        let a = Csr::from_coo(&coo);
        let h = init::uniform::<f64>(a.cols(), 3, -1.0, 1.0, seed);
        let want = gemm::matmul(&a.to_dense(), &h);
        prop_assert!(spmm::spmm(&a, &h).max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn spmm_t_matches_transposed_reference(coo in arb_coo(), seed in 0u64..1000) {
        let a = Csr::from_coo(&coo);
        let h = init::uniform::<f64>(a.rows(), 3, -1.0, 1.0, seed);
        let want = gemm::matmul(&a.transpose().to_dense(), &h);
        prop_assert!(spmm::spmm_t(&a, &h).max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn tropical_aggregations_bound_real_features(a in arb_adjacency(), seed in 0u64..1000) {
        // min ≤ every aggregated feature ≤ max, vertex-wise, over the
        // tropical semirings with zero weights.
        let trop = norm::to_aggregation_weights(&a, 0.0);
        let h = init::uniform::<f64>(a.cols(), 2, -1.0, 1.0, seed);
        let mins = spmm::spmm_semiring(&MinPlus, &trop, &h);
        let maxs = spmm::spmm_semiring(&MaxPlus, &trop, &h);
        let avgs = spmm::spmm_semiring(&Average, &trop.map_values(|_| 1.0), &h);
        for i in 0..a.rows() {
            if a.row_nnz(i) == 0 { continue; }
            for f in 0..2 {
                prop_assert!(mins[(i, f)] <= maxs[(i, f)] + 1e-12);
                prop_assert!(avgs[(i, f)] >= mins[(i, f)] - 1e-9);
                prop_assert!(avgs[(i, f)] <= maxs[(i, f)] + 1e-9);
            }
        }
    }

    #[test]
    fn graph_softmax_rows_are_distributions(coo in arb_coo()) {
        let x = Csr::from_coo(&coo);
        let sm = masked::row_softmax(&x);
        for r in 0..x.rows() {
            let (_, vals) = sm.row(r);
            if vals.is_empty() { continue; }
            let total: f64 = vals.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            for &v in vals {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
            }
        }
    }

    #[test]
    fn sddmm_equals_masked_dense_product(a in arb_adjacency(), seed in 0u64..1000) {
        let x = init::uniform::<f64>(a.rows(), 3, -1.0, 1.0, seed);
        let y = init::uniform::<f64>(a.cols(), 3, -1.0, 1.0, seed ^ 1);
        let got = sddmm::sddmm(&a, &x, &y).to_dense();
        let want = ops::hadamard(&a.to_dense(), &gemm::matmul_nt(&x, &y));
        prop_assert!(got.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn rep_sum_rs_identities(len in 1usize..12, cols in 1usize..6, seed in 0u64..1000) {
        let x = init::uniform::<f64>(len, cols, -1.0, 1.0, seed);
        // sum(rep(v)) = cols * v
        let v: Vec<f64> = (0..len).map(|i| i as f64 * 0.5 - 1.0).collect();
        let summed = blocks::row_sums(&blocks::rep(&v, cols));
        for (s, &vi) in summed.iter().zip(&v) {
            prop_assert!((s - cols as f64 * vi).abs() < 1e-10);
        }
        // rs(x) = rep(sum(x))
        let rs = blocks::rs(&x, 4);
        let rep = blocks::rep(&blocks::row_sums(&x), 4);
        prop_assert!(rs.max_abs_diff(&rep) < 1e-12);
    }

    #[test]
    fn gcn_normalization_spectral_bound(a in arb_adjacency()) {
        // Every entry of D^{-1/2}(A+I)D^{-1/2} lies in (0, 1].
        let ahat = norm::sym_normalize(&norm::add_self_loops(&a));
        for &v in ahat.values() {
            prop_assert!(v > 0.0 && v <= 1.0 + 1e-12);
        }
        // Row sums of the row-normalized matrix are 1 (or 0).
        let rn = norm::row_normalize(&a);
        for s in masked::row_sums(&rn) {
            prop_assert!(s.abs() < 1e-12 || (s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn block_partition_is_lossless(a in arb_adjacency(), q in 1usize..4) {
        // Slicing into q×q blocks and reassembling preserves every entry.
        let n = a.rows();
        let bounds = |b: usize| (b * n / q, (b + 1) * n / q);
        let mut total = 0usize;
        for i in 0..q {
            for j in 0..q {
                let (r0, r1) = bounds(i);
                let (c0, c1) = bounds(j);
                let blk = a.block(r0, r1, c0, c1);
                total += blk.nnz();
                for r in 0..blk.rows() {
                    let (cols, vals) = blk.row(r);
                    for (&c, &v) in cols.iter().zip(vals) {
                        prop_assert_eq!(a.get(r0 + r, c0 + c as usize), v);
                    }
                }
            }
        }
        prop_assert_eq!(total, a.nnz());
    }
}

proptest! {
    // Heavier cases: spawn simulated clusters, so fewer iterations.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn distributed_inference_equals_sequential_on_random_graphs(
        a in arb_adjacency(),
        seed in 0u64..1000,
        kind_idx in 0usize..4,
        q in 1usize..4,
    ) {
        let kind = [ModelKind::Va, ModelKind::Agnn, ModelKind::Gat, ModelKind::Gcn][kind_idx];
        let prepared = GnnModel::<f64>::prepare_adjacency(kind, &a);
        let n = prepared.rows();
        let x = init::uniform::<f64>(n, 3, -1.0, 1.0, seed);
        let seq = GnnModel::<f64>::uniform(kind, &[3, 4, 2], Activation::Tanh, seed)
            .inference(&prepared, &x);
        let p = q * q;
        let (errs, _) = Cluster::run(p, move |comm| {
            let ctx = DistContext::new(&comm, &prepared);
            let model = DistGnnModel::<f64>::uniform(kind, &[3, 4, 2], Activation::Tanh, seed);
            let (c0, c1) = ctx.col_range();
            let out = model.inference(&ctx, &x.slice_rows(c0, c1 - c0));
            out.max_abs_diff(&seq.slice_rows(c0, c1 - c0))
        });
        for e in errs {
            prop_assert!(e < 1e-9, "{:?} p={}: {}", kind, p, e);
        }
    }

    #[test]
    fn halo_engine_equals_sequential_on_random_graphs(
        a in arb_adjacency(),
        seed in 0u64..1000,
        kind_idx in 0usize..4,
        p in 1usize..5,
    ) {
        use atgnn_baseline::halo::{HaloPlan, LocalDistModel, Partition1d};
        let kind = [ModelKind::Va, ModelKind::Agnn, ModelKind::Gat, ModelKind::Gcn][kind_idx];
        let prepared = GnnModel::<f64>::prepare_adjacency(kind, &a);
        let n = prepared.rows();
        let x = init::uniform::<f64>(n, 3, -1.0, 1.0, seed);
        let seq = GnnModel::<f64>::uniform(kind, &[3, 4, 2], Activation::Tanh, seed)
            .inference(&prepared, &x);
        let (errs, _) = Cluster::run(p, move |comm| {
            let part = Partition1d { n, p: comm.size() };
            let plan = HaloPlan::build(&prepared, part, comm.rank());
            let model = LocalDistModel::<f64>::uniform(kind, &[3, 4, 2], Activation::Tanh, seed);
            let (lo, hi) = part.bounds(comm.rank());
            let out = model.inference(&plan, &comm, &x.slice_rows(lo, hi - lo));
            out.max_abs_diff(&seq.slice_rows(lo, hi - lo))
        });
        for e in errs {
            prop_assert!(e < 1e-9, "{:?} p={}: {}", kind, p, e);
        }
    }

    #[test]
    fn dense_gemm_associativity(n in 1usize..8, seed in 0u64..1000) {
        let a = init::uniform::<f64>(n, n, -1.0, 1.0, seed);
        let b = init::uniform::<f64>(n, n, -1.0, 1.0, seed ^ 2);
        let c = init::uniform::<f64>(n, n, -1.0, 1.0, seed ^ 3);
        let left = gemm::matmul(&gemm::matmul(&a, &b), &c);
        let right = gemm::matmul(&a, &gemm::matmul(&b, &c));
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }
}


