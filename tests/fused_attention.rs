//! Fused-vs-staged equivalence for the one-pass attention pipelines.
//!
//! The one-pass sweep (`atgnn_sparse::attention`) must agree with the
//! staged oracle (separate SDDMM → softmax → SpMM passes) on real graph
//! shapes — uniform Erdős–Rényi and skewed Kronecker — at every thread
//! count, for all three attentional models, forward *and* backward.
//! Comparisons use the same 1e-9 tolerance discipline as
//! `tests/runtime_determinism.rs` rather than bitwise equality, so the
//! one-pass kernels stay free to reassociate row reductions.

use atgnn::loss::Mse;
use atgnn::optimizer::Sgd;
use atgnn::plan::ExecPlan;
use atgnn::{AGnnLayer, GnnModel};
use atgnn_graphgen::{erdos_renyi, kronecker};
use atgnn_sparse::{attention, csr, norm, Csr};
use atgnn_tensor::{init, rt, Activation, Dense};

fn graphs() -> Vec<(&'static str, Csr<f64>)> {
    vec![
        (
            "erdos_renyi",
            erdos_renyi::adjacency::<f64>(2000, 32_000, 42),
        ),
        ("kronecker", kronecker::adjacency::<f64>(2048, 32_768, 7)),
    ]
}

fn feats(n: usize, k: usize, seed: usize) -> Dense<f64> {
    Dense::from_fn(n, k, |i, j| {
        ((i * 31 + j * 17 + seed * 7) % 23) as f64 / 11.0 - 1.0
    })
}

fn csr_close(a: &Csr<f64>, b: &Csr<f64>, tol: f64, what: &str) {
    assert!(a.same_pattern(b), "{what}: pattern mismatch");
    for (x, y) in a.values().iter().zip(b.values()) {
        assert!((x - y).abs() < tol, "{what}: {x} vs {y}");
    }
}

fn vec_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    for (x, y) in a.iter().zip(b) {
        assert!((x - y).abs() < tol, "{what}: {x} vs {y}");
    }
}

/// One test (not several) so the in-process `rt::set_threads` sweep cannot
/// race with itself under the parallel test harness.
#[test]
fn fused_matches_staged_on_real_graphs_across_thread_counts() {
    let max = rt::max_threads();
    for (name, a) in graphs() {
        let n = a.rows();
        let h = feats(n, 32, 1);
        let hp = feats(n, 16, 2);
        let g = feats(n, 16, 3);
        let m = feats(n, 32, 4);
        let u: Vec<f64> = (0..n)
            .map(|i| ((i * 13 % 37) as f64) / 19.0 - 1.0)
            .collect();
        let v: Vec<f64> = (0..n)
            .map(|i| ((i * 29 % 41) as f64) / 23.0 - 0.8)
            .collect();
        let beta = 1.3f64;
        for threads in [1usize, 2, 8] {
            rt::set_threads(threads);
            let tag = format!("{name}/threads={threads}");

            // VA forward + backward.
            let f = attention::attention_forward_va(&a, &h, true);
            let s = attention::staged_forward_va(&a, &h, true);
            assert!(f.out.max_abs_diff(&s.out) < 1e-9, "{tag}: va fwd");
            csr_close(&f.psi.unwrap(), &s.psi.unwrap(), 1e-9, &tag);
            let (nf, nhf) = attention::attention_backward_va(&a, &m, &h);
            let (ns, nhs) = attention::staged_backward_va(&a, &m, &h);
            assert!(nhf.max_abs_diff(&nhs) < 1e-9, "{tag}: va bwd NH");
            csr_close(&nf, &ns, 1e-9, &tag);

            // AGNN forward + backward.
            let f = attention::attention_forward_agnn(&a, &h, &hp, beta, true);
            let s = attention::staged_forward_agnn(&a, &h, &hp, beta, true);
            assert!(f.out.max_abs_diff(&s.out) < 1e-9, "{tag}: agnn fwd");
            let (psi, cos) = (f.psi.unwrap(), f.scores.unwrap());
            csr_close(&psi, &s.psi.unwrap(), 1e-9, &tag);
            csr_close(&cos, &s.scores.unwrap(), 1e-9, &tag);
            let bf = attention::attention_backward_agnn(&a, &psi, &cos, &h, &hp, &g, beta);
            let bs = attention::staged_backward_agnn(&a, &psi, &cos, &h, &hp, &g, beta);
            assert!((bf.dbeta - bs.dbeta).abs() < 1e-9, "{tag}: agnn dbeta");
            assert!(bf.ph.max_abs_diff(&bs.ph) < 1e-9, "{tag}: agnn PH");
            csr_close(&bf.p, &bs.p, 1e-9, &tag);
            csr_close(&bf.tc, &bs.tc, 1e-9, &tag);
            vec_close(&bf.row_corr, &bs.row_corr, 1e-9, &tag);

            // GAT forward + backward.
            let f = attention::attention_forward_gat(&a, &u, &v, &hp, 0.2, true);
            let s = attention::staged_forward_gat(&a, &u, &v, &hp, 0.2, true);
            assert!(f.out.max_abs_diff(&s.out) < 1e-9, "{tag}: gat fwd");
            let (psi, c_pre) = (f.psi.unwrap(), f.scores.unwrap());
            csr_close(&psi, &s.psi.unwrap(), 1e-9, &tag);
            csr_close(&c_pre, &s.scores.unwrap(), 1e-9, &tag);
            let (dcf, duf) = attention::attention_backward_gat(&a, &psi, &c_pre, &hp, &g, 0.2);
            let (dcs, dus) = attention::staged_backward_gat(&a, &psi, &c_pre, &hp, &g, 0.2);
            csr_close(&dcf, &dcs, 1e-9, &tag);
            vec_close(&duf, &dus, 1e-9, &tag);

            // All-negative score rows: the row-max subtraction must keep
            // the row softmax finite and normalized where huge negative
            // scores would underflow a naive exp-then-sum.
            let neg_u = vec![-1e4f64; n];
            let neg_v = vec![-750.0f64; n];
            let f = attention::attention_forward_gat(&a, &neg_u, &neg_v, &hp, 0.2, true);
            let s = attention::staged_forward_gat(&a, &neg_u, &neg_v, &hp, 0.2, true);
            assert!(f.out.max_abs_diff(&s.out) < 1e-9, "{tag}: gat neg fwd");
            let psi = f.psi.unwrap();
            assert!(
                psi.values().iter().all(|p| p.is_finite() && *p >= 0.0),
                "{tag}: non-finite Ψ under all-negative scores"
            );
        }
    }
    rt::set_threads(max);
}

/// End-to-end training equivalence: a model whose layers run the fused
/// plan tracks one running the staged plan within the FP-reassociation
/// tolerance, for every attentional layer type.
#[test]
fn layer_training_tracks_staged_oracle() {
    use atgnn::layers::{AgnnLayer, GatLayer, VaLayer};
    let n = 512;
    let a = kronecker::adjacency::<f64>(n, 4096, 3);
    let a_gat = norm::add_self_loops(&a);
    let x = init::features::<f64>(n, 16, 5);
    let target = init::features::<f64>(n, 8, 7);

    type Builder<'g> = (
        &'g str,
        &'g Csr<f64>,
        Box<dyn Fn(ExecPlan) -> GnnModel<f64>>,
    );
    let builders: Vec<Builder> = vec![
        (
            "va",
            &a,
            Box::new(|p| {
                GnnModel::new(vec![Box::new(
                    VaLayer::<f64>::new(16, 8, Activation::Tanh, 11).with_plan(p),
                ) as Box<dyn AGnnLayer<f64>>])
            }),
        ),
        (
            "agnn",
            &a,
            Box::new(|p| {
                GnnModel::new(vec![Box::new(
                    AgnnLayer::<f64>::new(16, 8, Activation::Tanh, 13).with_plan(p),
                ) as Box<dyn AGnnLayer<f64>>])
            }),
        ),
        (
            "gat",
            &a_gat,
            Box::new(|p| {
                GnnModel::new(vec![Box::new(
                    GatLayer::<f64>::new(16, 8, Activation::Tanh, 17).with_plan(p),
                ) as Box<dyn AGnnLayer<f64>>])
            }),
        ),
    ];
    for (name, adj, build) in builders {
        let mut fused = build(ExecPlan::fused());
        let mut staged = build(ExecPlan::staged());
        let loss = Mse::new(target.clone());
        let (mut of, mut os) = (Sgd::new(0.01), Sgd::new(0.01));
        for step in 0..3 {
            let lf = fused.train_step(adj, &x, &loss, &mut of);
            let ls = staged.train_step(adj, &x, &loss, &mut os);
            assert!(
                (lf - ls).abs() < 1e-9,
                "{name}: losses diverged at step {step}: {lf} vs {ls}"
            );
        }
        let inf_f = fused.inference(adj, &x);
        let inf_s = staged.inference(adj, &x);
        assert!(
            inf_f.max_abs_diff(&inf_s) < 1e-9,
            "{name}: post-training inference diverged"
        );
    }
}

/// The acceptance-criterion allocation assertion: the one-pass fused
/// forward allocates **zero** intermediate score `Csr` value buffers in
/// inference mode, exactly the cache matrices in training mode, and
/// strictly fewer than the staged pipeline either way.
#[test]
fn fused_forward_allocates_no_intermediate_score_csrs() {
    let a = kronecker::adjacency::<f64>(1024, 8192, 9);
    let n = a.rows();
    let h = feats(n, 32, 6);
    let hp = feats(n, 16, 7);
    let u: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.1 - 0.3).collect();
    let v: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.1 - 0.2).collect();

    // Inference (no caches): zero Csr value allocations on the hot path.
    let before = csr::value_allocs();
    let _ = attention::attention_forward_va(&a, &h, false);
    let _ = attention::attention_forward_agnn(&a, &h, &hp, 1.0, false);
    let _ = attention::attention_forward_gat(&a, &u, &v, &hp, 0.2, false);
    assert_eq!(
        csr::value_allocs() - before,
        0,
        "fused inference must allocate zero intermediate score Csrs"
    );

    // Training (caches requested): exactly the returned cache matrices —
    // Ψ for VA, Ψ + secondary for AGNN/GAT — and nothing else.
    let before = csr::value_allocs();
    let _ = attention::attention_forward_va(&a, &h, true);
    assert_eq!(csr::value_allocs() - before, 1, "va caches Ψ only");
    let before = csr::value_allocs();
    let _ = attention::attention_forward_agnn(&a, &h, &hp, 1.0, true);
    assert_eq!(csr::value_allocs() - before, 2, "agnn caches Ψ + cos only");
    let before = csr::value_allocs();
    let _ = attention::attention_forward_gat(&a, &u, &v, &hp, 0.2, true);
    assert_eq!(csr::value_allocs() - before, 2, "gat caches Ψ + C only");

    // The staged pipeline allocates strictly more for the same results.
    let before = csr::value_allocs();
    let _ = attention::staged_forward_gat(&a, &u, &v, &hp, 0.2, true);
    let staged_allocs = csr::value_allocs() - before;
    assert!(
        staged_allocs > 2,
        "staged GAT should allocate intermediates beyond the caches (got {staged_allocs})"
    );
}

/// The fused GAT forward with a dense reference on a graph with self
/// loops — a direct correctness anchor independent of the staged oracle.
#[test]
fn fused_gat_matches_dense_reference() {
    let a = norm::add_self_loops(&erdos_renyi::adjacency::<f64>(64, 512, 21));
    let n = a.rows();
    let hp = feats(n, 8, 8);
    let u: Vec<f64> = (0..n).map(|i| (i % 11) as f64 * 0.2 - 1.0).collect();
    let v: Vec<f64> = (0..n).map(|i| (i % 13) as f64 * 0.15 - 0.9).collect();
    let lrelu = Activation::LeakyRelu(0.2);
    let mut want = Dense::<f64>::zeros(n, 8);
    for (i, &ui) in u.iter().enumerate().take(n) {
        let (cols, _) = a.row(i);
        let scores: Vec<f64> = cols
            .iter()
            .map(|&j| lrelu.eval(ui + v[j as usize]))
            .collect();
        let maxs = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = scores.iter().map(|s| (s - maxs).exp()).collect();
        let total: f64 = exps.iter().sum();
        for (&j, e) in cols.iter().zip(&exps) {
            let p = e / total;
            for (o, &hv) in want.row_mut(i).iter_mut().zip(hp.row(j as usize)) {
                *o += p * hv;
            }
        }
    }
    let got = attention::attention_forward_gat(&a, &u, &v, &hp, 0.2, false);
    assert!(got.out.max_abs_diff(&want) < 1e-12);
}
