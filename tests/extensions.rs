//! Integration tests for the extension surface: multi-head GAT, GIN, the
//! DAG fusion analyzer, checkpointing, and the high-level training loop —
//! exercised through the public API only.

use atgnn::dag::Dag;
use atgnn::layers::{GinLayer, HeadCombine, MultiHeadGatLayer};
use atgnn::loss::SoftmaxCrossEntropy;
use atgnn::optimizer::Adam;
use atgnn::train::{fit, TrainConfig};
use atgnn::{checkpoint, AGnnLayer, GnnModel, ModelKind};
use atgnn_graphgen::kronecker;
use atgnn_sparse::norm;
use atgnn_tensor::{init, Activation};

#[test]
fn multihead_gat_node_classification() {
    // The canonical GAT architecture: 8 concat heads then an averaging
    // output layer, trained with the high-level fit loop.
    let raw = kronecker::adjacency::<f64>(64, 512, 1);
    let a = norm::add_self_loops(&raw);
    let x = init::features::<f64>(64, 8, 2);
    let labels: Vec<usize> = (0..64).map(|v| v % 3).collect();
    let loss = SoftmaxCrossEntropy::dense(labels);
    let l1: Box<dyn AGnnLayer<f64>> = Box::new(MultiHeadGatLayer::new(
        8,
        4,
        8,
        HeadCombine::Concat,
        Activation::Elu,
        3,
    ));
    let l2: Box<dyn AGnnLayer<f64>> = Box::new(MultiHeadGatLayer::new(
        32,
        3,
        4,
        HeadCombine::Average,
        Activation::Identity,
        5,
    ));
    let mut model = GnnModel::new(vec![l1, l2]);
    let mut opt = Adam::new(0.02);
    let hist = fit(
        &mut model,
        &a,
        &x,
        &loss,
        &mut opt,
        &TrainConfig {
            epochs: 60,
            patience: 0,
            min_rel_improvement: 0.0,
        },
    );
    assert!(
        hist.best_loss < hist.losses[0],
        "{} -> {}",
        hist.losses[0],
        hist.best_loss
    );
}

#[test]
fn gin_stacks_with_attention_layers() {
    // Heterogeneous stacks: a GIN feature extractor feeding a GAT head.
    use atgnn::layers::GatLayer;
    // Kronecker rounds the vertex count to a power of two.
    let raw = kronecker::adjacency::<f64>(32, 256, 7);
    let a = norm::add_self_loops(&raw);
    let x = init::features::<f64>(a.rows(), 6, 8);
    let l1: Box<dyn AGnnLayer<f64>> = Box::new(GinLayer::new(6, 12, 8, Activation::Relu, 9));
    let l2: Box<dyn AGnnLayer<f64>> = Box::new(GatLayer::new(8, 4, Activation::Identity, 11));
    let mut model = GnnModel::new(vec![l1, l2]);
    let target = init::features::<f64>(a.rows(), 4, 13);
    let loss = atgnn::loss::Mse::new(target);
    let mut opt = Adam::new(0.01);
    let hist = fit(&mut model, &a, &x, &loss, &mut opt, &TrainConfig::default());
    assert!(hist.best_loss < hist.losses[0]);
}

#[test]
fn checkpoint_round_trip_preserves_trained_model() {
    let a = kronecker::adjacency::<f64>(32, 160, 15);
    let prepared = GnnModel::<f64>::prepare_adjacency(ModelKind::Agnn, &a);
    let x = init::features::<f64>(32, 4, 16);
    let labels: Vec<usize> = (0..32).map(|v| v % 2).collect();
    let loss = SoftmaxCrossEntropy::dense(labels);
    let mut model = GnnModel::<f64>::uniform(ModelKind::Agnn, &[4, 8, 2], Activation::Tanh, 17);
    let mut opt = Adam::new(0.02);
    for _ in 0..20 {
        model.train_step(&prepared, &x, &loss, &mut opt);
    }
    let trained_out = model.inference(&prepared, &x);
    let path = std::env::temp_dir().join("atgnn_ext_test.ckpt");
    checkpoint::save(&model, &path).unwrap();
    let mut restored = GnnModel::<f64>::uniform(ModelKind::Agnn, &[4, 8, 2], Activation::Tanh, 999);
    checkpoint::load(&mut restored, &path).unwrap();
    assert!(restored.inference(&prepared, &x).max_abs_diff(&trained_out) < 1e-15);
    std::fs::remove_file(path).ok();
}

#[test]
fn dag_analysis_certifies_no_materialization_for_every_model() {
    for dag in [
        Dag::va_forward(),
        Dag::agnn_forward(),
        Dag::gat_forward(),
        Dag::va_backward(),
        Dag::agnn_backward(),
        Dag::gat_backward(),
    ] {
        assert!(
            !dag.virtual_nodes().is_empty(),
            "models have virtual tensors"
        );
        assert!(
            dag.all_virtual_fused(),
            "a virtual tensor would be materialized"
        );
        // The full static analyzer agrees: no rule fires on the canned plans.
        assert!(atgnn::analyze::validate(&dag).is_empty());
    }
}

#[test]
fn static_analyzer_validates_every_model_kind() {
    for kind in [
        ModelKind::Va,
        ModelKind::Agnn,
        ModelKind::Gat,
        ModelKind::Gcn,
    ] {
        assert!(
            atgnn::analyze::validate_model(kind).is_empty(),
            "{kind:?} plan must be clean"
        );
    }
}

#[test]
fn multihead_param_count_scales_with_heads() {
    let one = MultiHeadGatLayer::<f64>::new(8, 4, 1, HeadCombine::Concat, Activation::Elu, 1);
    let four = MultiHeadGatLayer::<f64>::new(8, 4, 4, HeadCombine::Concat, Activation::Elu, 1);
    assert_eq!(four.param_count(), 4 * one.param_count());
    assert_eq!(four.out_dim(), 16);
}
