//! Golden-file tests for the plan verifier.
//!
//! Each case builds a known-bad tensor DAG, runs the *full* analyzer
//! (`atgnn::analyze::validate` — shapes, virtual safety, fusion
//! legality, semirings, determinism, FP-stability, aliasing, precision)
//! and compares the rendered diagnostic stream byte-for-byte against
//! `tests/golden/<case>.txt`. The goldens pin the exact rule, node id,
//! and wording, so an accidental change to any diagnostic — or an
//! analysis silently going quiet — fails loudly.
//!
//! To accept intentional wording changes, regenerate with:
//!
//! ```text
//! ATGNN_BLESS=1 cargo test --test analyzer_golden
//! ```
//!
//! The final test sweeps the clean corpus: every canned model DAG and
//! the fused execution plan must produce *zero* diagnostics of any
//! severity.

use std::path::PathBuf;

use atgnn::analyze::{self, validate};
use atgnn::dag::{Dag, Dim, SemiringKind, Shape, Storage, TensorClass};
use atgnn::{ExecPlan, ModelKind};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Renders diagnostics exactly as the CLI prints them, one per line.
/// `validate` visits nodes in a fixed order, so the stream is
/// deterministic without sorting.
fn render(dag: &Dag) -> String {
    validate(dag)
        .iter()
        .map(|d| format!("{d}\n"))
        .collect::<String>()
}

fn check_golden(name: &str, dag: &Dag) {
    let got = render(dag);
    assert!(
        !got.is_empty(),
        "{name}: a golden case must produce at least one diagnostic"
    );
    let path = golden_path(name);
    if std::env::var_os("ATGNN_BLESS").is_some() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}; run ATGNN_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{name}: diagnostics drifted from the golden; if intentional, \
         rerun with ATGNN_BLESS=1 and review the diff"
    );
}

/// `H·W` grown `depth` times without normalization: magnitude `√k^depth`
/// under the analyzer's random-sign model (k = 16 ⇒ gain 4 per hop).
fn chain_of_matmuls(d: &mut Dag, depth: usize) -> usize {
    let h = d.add("H", TensorClass::DenseNk, &[]);
    let w = d.add("W", TensorClass::DenseKk, &[]);
    let mut cur = h;
    for _ in 0..depth {
        cur = d.add("matmul", TensorClass::DenseNk, &[cur, w]);
    }
    cur
}

#[test]
fn golden_shape_mismatch() {
    let mut d = Dag::new();
    let h = d.add("H", TensorClass::DenseNk, &[]);
    let w = d.add_shaped(
        "W",
        TensorClass::DenseKk,
        &[],
        Shape::new(Dim::K, Dim::KPrime),
    );
    // matmul(n×k, k×k') declared as k×k' output: wrong on both axes.
    let _z = d.add("matmul(H,W)", TensorClass::DenseKk, &[h, w]);
    check_golden("shape_mismatch", &d);
}

#[test]
fn golden_unfused_virtual() {
    let mut d = Dag::new();
    let h = d.add("H", TensorClass::DenseNk, &[]);
    let hht = d.add("matmul_nt(H,H)", TensorClass::DenseNn, &[h, h]);
    // The virtual n×n product escapes into a dense matmul instead of a
    // sparse sampler: one escape error plus the never-sampled region.
    let _bad = d.add("matmul(HHt,H)", TensorClass::DenseNk, &[hht, h]);
    check_golden("unfused_virtual", &d);
}

#[test]
fn golden_illegal_fusion() {
    let mut d = Dag::new();
    let h = d.add("H", TensorClass::DenseNk, &[]);
    let a = d.add("A", TensorClass::SparseNn, &[]);
    let v1 = d.add("matmul_nt(H,H)", TensorClass::DenseNn, &[h, h]);
    // A virtual×virtual matmul cannot be evaluated per sampled entry.
    let v2 = d.add_shaped(
        "matmul(V,V)",
        TensorClass::DenseNn,
        &[v1, v1],
        Shape::new(Dim::N, Dim::N),
    );
    let _s = d.add("mask(A,·)", TensorClass::SparseNn, &[a, v2]);
    check_golden("illegal_fusion", &d);
}

#[test]
fn golden_nondet_reduction() {
    let mut d = Dag::new();
    let h = d.add("H", TensorClass::DenseNk, &[]);
    let a = d.add("A", TensorClass::SparseNn, &[]);
    // An aggregation no kernel exports a schedule fact for, over a
    // rounding semiring: no reduction-order-invariance proof exists.
    let _agg = d.add_agg(
        "scatter_add(A,H)",
        TensorClass::DenseNk,
        &[a, h],
        Shape::new(Dim::N, Dim::K),
        SemiringKind::Real,
    );
    check_golden("nondet_reduction", &d);
}

#[test]
fn golden_softmax_overflow() {
    let mut d = Dag::new();
    // 4^5 = 1024 > 709: a raw exp (no max shift) can overflow.
    let big = chain_of_matmuls(&mut d, 5);
    let _e = d.add("exp", TensorClass::DenseNk, &[big]);
    check_golden("softmax_overflow", &d);
}

#[test]
fn golden_cancellation() {
    let mut d = Dag::new();
    let x = chain_of_matmuls(&mut d, 3); // magnitude 64 ≥ CANCEL_MAG
    let _s = d.add("sub", TensorClass::DenseNk, &[x, x]);
    check_golden("cancellation", &d);
}

#[test]
fn golden_loss_scale() {
    let mut d = Dag::new();
    d.mark_backward();
    let m2 = chain_of_matmuls(&mut d, 2); // magnitude 16
    let e = d.add("exp", TensorClass::DenseNk, &[m2]); // e^16 ≈ 8.9e6
    let _p = d.add("hadamard", TensorClass::DenseNk, &[e, e]);
    check_golden("loss_scale", &d);
}

#[test]
fn golden_alias_unsafe() {
    let mut d = Dag::new();
    let h = d.add("H", TensorClass::DenseNk, &[]);
    let x = d.add("scale", TensorClass::DenseNk, &[h]);
    // Declared in-place over `x`, but `x` has a second consumer below.
    let _bad = d.add("add_inplace(x,h)", TensorClass::DenseNk, &[x, h]);
    let _second = d.add("add", TensorClass::DenseNk, &[x, h]);
    check_golden("alias_unsafe", &d);
}

#[test]
fn golden_unsafe_narrowing() {
    let mut d = Dag::gat_forward();
    let sm = d
        .nodes()
        .iter()
        .position(|n| n.op.contains("softmax"))
        .expect("gat forward has a softmax");
    // bf16 storage on a keep-f32 node (softmax) is an error.
    d.set_storage(sm, Storage::Bf16);
    check_golden("unsafe_narrowing", &d);
}

#[test]
fn clean_corpus_produces_zero_diagnostics() {
    for kind in [
        ModelKind::Va,
        ModelKind::Agnn,
        ModelKind::Gat,
        ModelKind::Gcn,
    ] {
        let diags = analyze::validate_model(kind);
        assert!(diags.is_empty(), "{kind:?} model DAGs: {diags:?}");
        let diags = analyze::validate_plan(&ExecPlan::fused(), kind);
        assert!(diags.is_empty(), "{kind:?} fused plan: {diags:?}");
    }
}
