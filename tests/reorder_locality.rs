//! Property tests for the locality layer: `Csr::permute` invariants and
//! the end-to-end guarantee that running the fused attention kernels on
//! a reordered graph is observationally equivalent to the unordered run.
//!
//! Each property runs over seeded random cases (the in-repo ChaCha8
//! [`Rng`]); a failing case is reproducible from the seed in the
//! assertion message.

use atgnn_graphgen::reorder;
use atgnn_sparse::{attention, Coo, Csr};
use atgnn_tensor::rng::Rng;
use atgnn_tensor::Dense;

const CASES: u64 = 48;

/// A random square adjacency with self-loops, n in [4, 24).
fn arb_adjacency(rng: &mut Rng) -> Csr<f64> {
    let n = rng.gen_range(4, 24);
    let m = rng.gen_range(1, 100);
    let mut edges: Vec<(u32, u32)> = (0..m)
        .map(|_| (rng.gen_index(n) as u32, rng.gen_index(n) as u32))
        .collect();
    edges.extend((0..n as u32).map(|i| (i, i)));
    let mut coo = Coo::<f64>::from_edges(n, n, edges);
    coo.dedup_binary();
    Csr::from_coo(&coo)
}

/// A uniformly random permutation of `0..n` (Fisher–Yates).
fn arb_permutation(rng: &mut Rng, n: usize) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_index(i + 1));
    }
    perm
}

fn assert_csr_eq(a: &Csr<f64>, b: &Csr<f64>, msg: &str) {
    assert_eq!(a.rows(), b.rows(), "{msg}: row count");
    for r in 0..a.rows() {
        let (ca, va) = a.row(r);
        let (cb, vb) = b.row(r);
        assert_eq!(ca, cb, "{msg}: columns of row {r}");
        assert_eq!(va, vb, "{msg}: values of row {r}");
    }
}

#[test]
fn permute_then_inverse_roundtrips() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x700 + case);
        let a = arb_adjacency(&mut rng);
        let perm = arb_permutation(&mut rng, a.rows());
        let inv = reorder::inverse(&perm);
        let back = a.permute(&perm).permute(&inv);
        assert_csr_eq(&back, &a, &format!("case {case}"));
    }
}

#[test]
fn permute_keeps_columns_strictly_increasing() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x800 + case);
        let a = arb_adjacency(&mut rng);
        let perm = arb_permutation(&mut rng, a.rows());
        let p = a.permute(&perm);
        assert_eq!(p.nnz(), a.nnz(), "case {case}: nnz preserved");
        for r in 0..p.rows() {
            let (cols, _) = p.row(r);
            for w in cols.windows(2) {
                assert!(
                    w[0] < w[1],
                    "case {case}: row {r} columns not strictly increasing"
                );
            }
        }
    }
}

/// The computed reordering permutations (degree sort and RCM) are valid
/// permutations, and `reorder::inverse` inverts them.
#[test]
fn strategy_permutations_are_valid() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x900 + case);
        let a = arb_adjacency(&mut rng);
        for strategy in [reorder::Strategy::Degree, reorder::Strategy::Rcm] {
            let perm = reorder::permutation(&a, strategy)
                .unwrap_or_else(|| panic!("case {case}: forced strategy must produce a perm"));
            let inv = reorder::inverse(&perm);
            for (old, &new) in inv.iter().enumerate() {
                assert_eq!(
                    perm[new as usize] as usize, old,
                    "case {case} {strategy:?}: inverse mismatch at {old}"
                );
            }
        }
    }
}

/// End-to-end oracle: fused GAT attention on the permuted graph, with
/// permuted inputs, equals the unpermuted run after mapping the output
/// back through the inverse permutation.
#[test]
fn fused_attention_commutes_with_permutation() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xa00 + case);
        let a = arb_adjacency(&mut rng);
        let n = a.rows();
        let k = rng.gen_range(1, 9);
        let u: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let v: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let hp = Dense::from_fn(n, k, |i, j| ((i * 13 + j * 7) % 19) as f64 / 9.0 - 1.0);
        let want = attention::attention_forward_gat(&a, &u, &v, &hp, 0.2, false).out;

        let perm = arb_permutation(&mut rng, n);
        let inv = reorder::inverse(&perm);
        let ap = a.permute(&perm);
        let up: Vec<f64> = perm.iter().map(|&o| u[o as usize]).collect();
        let vp: Vec<f64> = perm.iter().map(|&o| v[o as usize]).collect();
        let hpp = hp.gather_rows(&perm);
        let got = attention::attention_forward_gat(&ap, &up, &vp, &hpp, 0.2, false)
            .out
            .gather_rows(&inv);
        let err = got.max_abs_diff(&want);
        assert!(
            err < 1e-6,
            "case {case}: permuted fused GAT diverges by {err:.2e}"
        );
    }
}
