//! End-to-end fault-tolerance guarantees of the distributed engine.
//!
//! Three load-bearing properties, asserted on real GAT training:
//!
//! 1. **Bit-identical healing** — a seeded drop/delay/dup/corrupt plan
//!    changes *when* frames arrive, never *what* arrives or in what
//!    reduction order, so final training losses match the fault-free run
//!    bit for bit, at every `ATGNN_THREADS` setting.
//! 2. **Crash recovery** — an injected rank crash mid-epoch is caught by
//!    the supervisor and the epoch respawns from the last CRC-checked
//!    checkpoint, landing on the same final loss as a run that never
//!    crashed.
//! 3. **Bounded detection** — every fault leaves a trace in the stats
//!    (drops force resends, corruption is detected by checksum), and
//!    every test is deadline-bounded by the plan's recv timeout, so a
//!    regression hangs for milliseconds, not forever.

use atgnn::{GnnModel, ModelKind};
use atgnn_dist::{train_mse_with_recovery, DistGnnModel, RecoveryConfig};
use atgnn_graphgen::{erdos_renyi, kronecker};
use atgnn_net::FaultPlan;
use atgnn_sparse::Csr;
use atgnn_tensor::{init, rt, Activation, Dense};
use std::path::PathBuf;

const P: usize = 4;
const STEPS: u64 = 6;
const K_IN: usize = 8;
const K_OUT: usize = 4;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("atgnn_fault_tolerance");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// A bounded-deadline config: any lost liveness surfaces as a recv/barrier
/// timeout panic within a few seconds instead of wedging the test run.
fn fenced(plan: FaultPlan) -> FaultPlan {
    plan.with_timeout_ms(10_000).with_retries(8)
}

fn inputs(a: &Csr<f64>) -> (Dense<f64>, Dense<f64>) {
    let n = a.rows();
    (init::features(n, K_IN, 11), init::features(n, K_OUT, 13))
}

fn train_losses(
    a: &Csr<f64>,
    plan: &FaultPlan,
    ckpt: &str,
) -> (Vec<u64>, atgnn_dist::RecoveryReport<f64>) {
    let prepared = GnnModel::<f64>::prepare_adjacency(ModelKind::Gat, a);
    let (x, target) = inputs(a);
    let cfg = RecoveryConfig {
        ckpt_every: 2,
        ckpt_path: tmp(ckpt),
        max_attempts: 3,
    };
    let report = train_mse_with_recovery(
        P,
        plan,
        &cfg,
        &prepared,
        &x,
        &target,
        || DistGnnModel::<f64>::uniform(ModelKind::Gat, &[K_IN, 8, K_OUT], Activation::Tanh, 17),
        STEPS,
        0.02,
        K_OUT,
    )
    .expect("training must survive the injected faults");
    let bits = report.losses.iter().map(|l| l.to_bits()).collect();
    (bits, report)
}

/// One test (not several) so the process-global `rt::set_threads` sweep
/// cannot race with itself under the parallel test harness.
#[test]
fn faulty_training_is_bit_identical_to_fault_free_across_thread_counts() {
    let graphs = [
        ("erdos_renyi", erdos_renyi::adjacency::<f64>(96, 768, 23)),
        ("kronecker", kronecker::adjacency::<f64>(128, 1024, 3)),
    ];
    let plan = fenced(
        FaultPlan::seeded(0xFA_017)
            .with_drop(0.08)
            .with_delay(0.10, 200)
            .with_dup(0.08)
            .with_corrupt(0.08),
    );
    let max = rt::max_threads();
    for (name, a) in &graphs {
        let mut reference: Option<Vec<u64>> = None;
        for threads in [1usize, 2, 8] {
            rt::set_threads(threads);
            let (clean, clean_report) = train_losses(
                a,
                &FaultPlan::none(),
                &format!("clean_{name}_{threads}.ckpt"),
            );
            let (faulty, faulty_report) =
                train_losses(a, &plan, &format!("faulty_{name}_{threads}.ckpt"));
            assert_eq!(
                faulty, clean,
                "{name}: faulty losses diverged from fault-free at {threads} threads"
            );
            assert_eq!(
                clean_report.stats.total_fault_events(),
                0,
                "{name}: a fault-free run must record zero fault events"
            );
            let events = faulty_report.stats.fault_totals();
            assert!(
                events.drops_injected > 0
                    && events.dups_injected > 0
                    && events.corruptions_injected > 0,
                "{name}: the plan must actually have injected faults ({events:?})"
            );
            assert!(
                events.resends > 0,
                "{name}: dropped frames can only be healed by resends ({events:?})"
            );
            let bits = &faulty;
            match &reference {
                Some(r) => assert_eq!(
                    bits, r,
                    "{name}: losses changed between 1 and {threads} threads"
                ),
                None => reference = Some(bits.clone()),
            }
        }
    }
    rt::set_threads(max);
}

#[test]
fn injected_crash_recovers_from_checkpoint_and_matches_no_crash_loss() {
    let a = kronecker::adjacency::<f64>(128, 1024, 5);
    let (clean, clean_report) = train_losses(&a, &FaultPlan::none(), "crash_clean.ckpt");
    assert_eq!(clean_report.attempts, 1);

    // Place the crash at ~2/3 of the clean run's supersteps: past the
    // step-4 checkpoint (ckpt_every = 2), before the run finishes. The
    // superstep count is deterministic, so this is a stable mid-epoch
    // point, not a guess.
    let crash_at = clean_report.stats.max_supersteps() * 2 / 3;
    assert!(crash_at > 0, "clean run must take some supersteps");
    let plan = fenced(FaultPlan::seeded(99).with_crash(1, crash_at));
    let (faulty, report) = train_losses(&a, &plan, "crash_faulty.ckpt");

    assert_eq!(report.recoveries, 1, "exactly one respawn");
    assert_eq!(report.attempts, 2);
    assert!(
        report.first_step > 0,
        "the respawn must resume from a checkpoint, not from scratch"
    );
    // The resumed attempt replays only steps first_step..STEPS; those
    // must match the tail of the uninterrupted run bit for bit.
    assert_eq!(
        faulty,
        clean[report.first_step as usize..],
        "recovered training diverged from the no-crash run"
    );
}

#[test]
fn corruption_only_plan_is_healed_by_checksum_and_resend() {
    let a = erdos_renyi::adjacency::<f64>(96, 768, 29);
    let (clean, _) = train_losses(&a, &FaultPlan::none(), "corrupt_clean.ckpt");
    let plan = fenced(FaultPlan::seeded(7).with_corrupt(0.25));
    let (healed, report) = train_losses(&a, &plan, "corrupt_faulty.ckpt");
    assert_eq!(healed, clean, "healed run must match the fault-free run");
    let events = report.stats.fault_totals();
    assert!(
        events.corruptions_injected > 0,
        "plan must have corrupted frames ({events:?})"
    );
    assert!(
        events.corruptions_detected > 0 && events.resends > 0,
        "corruption is healed by checksum detection + resend ({events:?})"
    );
}
