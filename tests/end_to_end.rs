//! Cross-crate integration tests: graph generators → models → distributed
//! engines → baselines, exercised together the way the benchmark harness
//! uses them.

use atgnn::loss::{Mse, SoftmaxCrossEntropy};
use atgnn::optimizer::{Adam, Sgd};
use atgnn::{GnnModel, ModelKind};
use atgnn_baseline::halo::{HaloPlan, LocalDistModel, Partition1d};
use atgnn_dist::{DistContext, DistGnnModel};
use atgnn_graphgen::{erdos_renyi, kronecker};
use atgnn_net::Cluster;
use atgnn_tensor::{init, ops, Activation};

const KINDS: [ModelKind; 4] = [
    ModelKind::Va,
    ModelKind::Agnn,
    ModelKind::Gat,
    ModelKind::Gcn,
];

#[test]
fn full_pipeline_on_kronecker_graph() {
    // Generator → preparation → training → inference, every model.
    let a = kronecker::adjacency::<f64>(128, 1024, 3);
    // VA's raw dot-product scores are unnormalized (no softmax), so keep
    // the feature scale small and the step size conservative; the other
    // models tolerate the same settings.
    let x = ops::scale(&init::features::<f64>(a.rows(), 8, 5), 0.2);
    let target = init::features::<f64>(a.rows(), 4, 7);
    for kind in KINDS {
        let prepared = GnnModel::<f64>::prepare_adjacency(kind, &a);
        let mut model = GnnModel::<f64>::uniform(kind, &[8, 8, 4], Activation::Relu, 9);
        let loss = Mse::new(target.clone());
        let lr = if kind == ModelKind::Va { 1e-4 } else { 0.02 };
        let mut opt = Sgd::new(lr);
        let first = model.train_step(&prepared, &x, &loss, &mut opt);
        let mut last = first;
        for _ in 0..10 {
            last = model.train_step(&prepared, &x, &loss, &mut opt);
        }
        assert!(last < first, "{kind:?}: {first} -> {last}");
        let out = model.inference(&prepared, &x);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn three_engines_compute_the_same_function() {
    // Global tensor formulation (shared-memory), the 2D-distributed
    // engine, and the local-formulation halo engine must agree on the
    // same weights — the paper's core "same math, different execution"
    // premise end to end.
    let n = 24;
    let a = erdos_renyi::adjacency::<f64>(n, 96, 11);
    let x = init::features::<f64>(n, 5, 13);
    for kind in KINDS {
        let prepared = GnnModel::<f64>::prepare_adjacency(kind, &a);
        let seq = GnnModel::<f64>::uniform(kind, &[5, 6, 3], Activation::Tanh, 15)
            .inference(&prepared, &x);
        // 2D global engine on 4 ranks.
        let (g_err, _) = {
            let (prepared, x, seq) = (prepared.clone(), x.clone(), seq.clone());
            Cluster::run(4, move |comm| {
                let ctx = DistContext::new(&comm, &prepared).expect("square grid and adjacency");
                let model = DistGnnModel::<f64>::uniform(kind, &[5, 6, 3], Activation::Tanh, 15);
                let (c0, c1) = ctx.col_range();
                let out = model.inference(&ctx, &x.slice_rows(c0, c1 - c0));
                out.max_abs_diff(&seq.slice_rows(c0, c1 - c0))
            })
        };
        for e in g_err {
            assert!(e < 1e-9, "{kind:?} global dist: {e}");
        }
        // Halo local engine on 3 ranks.
        let (l_err, _) = {
            let (prepared, x, seq) = (prepared.clone(), x.clone(), seq.clone());
            Cluster::run(3, move |comm| {
                let part = Partition1d { n, p: comm.size() };
                let plan = HaloPlan::build(&prepared, part, comm.rank());
                let model = LocalDistModel::<f64>::uniform(kind, &[5, 6, 3], Activation::Tanh, 15);
                let (lo, hi) = part.bounds(comm.rank());
                let out = model.inference(&plan, &comm, &x.slice_rows(lo, hi - lo));
                out.max_abs_diff(&seq.slice_rows(lo, hi - lo))
            })
        };
        for e in l_err {
            assert!(e < 1e-9, "{kind:?} halo dist: {e}");
        }
    }
}

#[test]
fn distributed_training_converges_like_sequential() {
    // Several optimizer steps distributed vs sequential, then compare
    // losses step by step — catches drift anywhere in the fwd/bwd/update
    // chain.
    let n = 16;
    let a = kronecker::adjacency::<f64>(n, 64, 17);
    let x = init::features::<f64>(n, 4, 19);
    let target = init::features::<f64>(n, 4, 21);
    for kind in KINDS {
        let prepared = GnnModel::<f64>::prepare_adjacency(kind, &a);
        let mut seq = GnnModel::<f64>::uniform(kind, &[4, 4, 4], Activation::Tanh, 23);
        let loss = Mse::new(target.clone());
        let mut opt = Sgd::new(0.03);
        let seq_losses: Vec<f64> = (0..4)
            .map(|_| seq.train_step(&prepared, &x, &loss, &mut opt))
            .collect();
        let (dist_losses, _) = {
            let (prepared, x, target) = (prepared.clone(), x.clone(), target.clone());
            Cluster::run(4, move |comm| {
                let ctx = DistContext::new(&comm, &prepared).expect("square grid and adjacency");
                let mut model =
                    DistGnnModel::<f64>::uniform(kind, &[4, 4, 4], Activation::Tanh, 23);
                let (c0, c1) = ctx.col_range();
                let x_j = x.slice_rows(c0, c1 - c0);
                let t_j = target.slice_rows(c0, c1 - c0);
                (0..4)
                    .map(|_| model.train_step_mse(&ctx, &x_j, &t_j, 0.03, 4))
                    .collect::<Vec<f64>>()
            })
        };
        for rank_losses in dist_losses {
            for (d, s) in rank_losses.iter().zip(&seq_losses) {
                assert!((d - s).abs() < 1e-9, "{kind:?}: {d} vs {s}");
            }
        }
    }
}

#[test]
fn attention_beats_convolution_on_attention_friendly_task() {
    // A task built to need attention: each vertex's label is the label of
    // its single "strong" neighbor (feature-similar), among many noise
    // neighbors. GAT can learn to focus; a fixed-coefficient GCN cannot.
    use atgnn_sparse::{Coo, Csr};
    let mut rng = atgnn_tensor::rng::Rng::seed_from_u64(31);
    let n = 120;
    let classes = 2;
    let k = 8;
    let mut x = init::features::<f64>(n, k, 33);
    let mut labels = vec![0usize; n];
    let mut coo = Coo::<f64>::new(n, n);
    for (v, label) in labels.iter_mut().enumerate() {
        *label = rng.gen_index(classes);
        // A strong feature marker for the class in the first coordinate.
        x.row_mut(v)[0] = *label as f64 * 2.0 - 1.0;
        // Noise edges.
        for _ in 0..6 {
            let u = rng.gen_index(n);
            if u != v {
                coo.push(v as u32, u as u32, 1.0);
            }
        }
    }
    coo.symmetrize_binary();
    let graph = Csr::from_coo(&coo);
    let loss = SoftmaxCrossEntropy::dense(labels);
    let mut acc = std::collections::HashMap::new();
    for kind in [ModelKind::Gat, ModelKind::Gcn] {
        let a = GnnModel::<f64>::prepare_adjacency(kind, &graph);
        let mut model = GnnModel::<f64>::uniform(kind, &[k, 16, classes], Activation::Elu, 35);
        let mut opt = Adam::new(0.01);
        for _ in 0..80 {
            model.train_step(&a, &x, &loss, &mut opt);
        }
        let out = model.inference(&a, &x);
        acc.insert(kind.name(), loss.accuracy(&out));
    }
    // Both can exploit the self-feature here; just require the attention
    // model to be at least competitive and well above chance.
    assert!(acc["GAT"] > 0.8, "GAT accuracy {:?}", acc);
}

#[test]
fn communication_phases_are_labeled() {
    let a = kronecker::adjacency::<f32>(64, 512, 37);
    let x = init::features::<f32>(64, 4, 39);
    let target = init::features::<f32>(64, 4, 41);
    let (_, stats) = Cluster::run(4, move |comm| {
        let ctx = DistContext::new(&comm, &a).expect("square grid and adjacency");
        let mut model = DistGnnModel::<f32>::uniform(ModelKind::Gat, &[4, 4], Activation::Relu, 43);
        let (c0, c1) = ctx.col_range();
        model.train_step_mse(
            &ctx,
            &x.slice_rows(c0, c1 - c0),
            &target.slice_rows(c0, c1 - c0),
            0.01,
            4,
        );
    });
    assert!(stats.phase_total("forward") > 0);
    assert!(stats.phase_total("backward") > 0);
    assert!(stats.phase_total("grad-allreduce") > 0);
}

#[test]
fn deep_and_wide_configurations_stay_finite() {
    // The paper sweeps L ∈ {2..10} and k ∈ {16,32,128}; stress a deep
    // narrow and a shallow wide model on both engines.
    let a = kronecker::adjacency::<f64>(64, 512, 47);
    let x = init::features::<f64>(64, 16, 49);
    for dims in [vec![16usize; 11], vec![16, 128, 16]] {
        for kind in KINDS {
            let prepared = GnnModel::<f64>::prepare_adjacency(kind, &a);
            let model = GnnModel::<f64>::uniform(kind, &dims, Activation::Relu, 51);
            let out = model.inference(&prepared, &x);
            assert!(
                out.as_slice().iter().all(|v| v.is_finite()),
                "{kind:?} {dims:?}"
            );
        }
    }
}

#[test]
fn minibatch_standin_matches_paper_batching() {
    use atgnn_baseline::minibatch;
    let a = kronecker::adjacency::<f64>(512, 4096, 53);
    let b = minibatch::sample_batch(
        &a,
        minibatch::PAPER_BATCH_SIZE,
        3,
        minibatch::DEFAULT_FANOUT,
        55,
    );
    // All 512 vertices fit in one 16k batch (the paper: a batch processes
    // "many orders of magnitude fewer vertices" only on large graphs).
    assert_eq!(b.targets, 512);
    let mut model = GnnModel::<f64>::uniform(ModelKind::Agnn, &[8, 8, 4], Activation::Relu, 57);
    let x = init::features::<f64>(512, 8, 59);
    let target = init::features::<f64>(b.vertices.len(), 4, 61);
    let loss = Mse::new(target);
    let mut opt = Sgd::new(0.01);
    let l = minibatch::train_batch_step(&mut model, ModelKind::Agnn, &b, &x, &loss, &mut opt);
    assert!(l.is_finite());
}

#[test]
fn graph_io_round_trip_through_training() {
    // Save a generated graph, load it back, verify the loaded graph
    // produces identical inference results.
    let a = erdos_renyi::edges::<f64>(48, 200, 63);
    let dir = std::env::temp_dir().join("atgnn_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("graph.coo");
    atgnn_graphgen::io::save_coo(&a, &path).unwrap();
    let loaded = atgnn_graphgen::io::load_coo::<f64>(&path).unwrap();
    let g1 = atgnn_graphgen::prepare_adjacency(a, 1);
    let g2 = atgnn_graphgen::prepare_adjacency(loaded, 1);
    let x = init::features::<f64>(48, 4, 65);
    let model = GnnModel::<f64>::uniform(ModelKind::Va, &[4, 4], Activation::Relu, 67);
    let o1 = model.inference(&g1, &x);
    let o2 = model.inference(&g2, &x);
    assert!(o1.max_abs_diff(&o2) < 1e-15);
    std::fs::remove_file(path).ok();
}

#[test]
fn gradient_allreduce_keeps_replicas_identical() {
    // After several distributed steps every rank must hold bit-identical
    // model outputs (replicated-parameter invariant).
    let n = 12;
    let a = erdos_renyi::adjacency::<f64>(n, 60, 69);
    let x = init::features::<f64>(n, 4, 71);
    let target = init::features::<f64>(n, 4, 73);
    let (outs, _) = Cluster::run(4, move |comm| {
        let ctx = DistContext::new(&comm, &a).expect("square grid and adjacency");
        let mut model =
            DistGnnModel::<f64>::uniform(ModelKind::Agnn, &[4, 4], Activation::Tanh, 75);
        let (c0, c1) = ctx.col_range();
        let x_j = x.slice_rows(c0, c1 - c0);
        let t_j = target.slice_rows(c0, c1 - c0);
        for _ in 0..3 {
            model.train_step_mse(&ctx, &x_j, &t_j, 0.05, 4);
        }
        // Return the full model output reconstructed from x (re-run
        // inference over own block only; blocks with equal j must agree).
        (ctx.j, model.inference(&ctx, &x_j).into_vec())
    });
    // Ranks sharing a column j hold the same replicated block.
    for a_rank in 0..4 {
        for b_rank in 0..4 {
            let (ja, va) = &outs[a_rank];
            let (jb, vb) = &outs[b_rank];
            if ja == jb {
                assert_eq!(
                    va, vb,
                    "replicas diverged between ranks {a_rank} and {b_rank}"
                );
            }
        }
    }
}

#[test]
fn halo_backward_uses_less_bandwidth_than_two_gathers_on_sparse_graphs() {
    // Sanity on the baseline's accounting: training ≈ forward gathers +
    // backward scatters; volume should be within a small factor of 2-4x
    // the inference volume.
    let n = 256;
    let a = erdos_renyi::adjacency::<f32>(n, 2048, 77);
    let x = init::features::<f32>(n, 8, 79);
    let target = init::features::<f32>(n, 8, 81);
    let run = |train: bool| {
        let (a, x, target) = (a.clone(), x.clone(), target.clone());
        let (_, stats) = Cluster::run(4, move |comm| {
            let part = Partition1d { n, p: comm.size() };
            let plan = HaloPlan::build(&a, part, comm.rank());
            let model =
                LocalDistModel::<f32>::uniform(ModelKind::Gat, &[8, 8], Activation::Relu, 83);
            let (lo, hi) = part.bounds(comm.rank());
            let x_own = x.slice_rows(lo, hi - lo);
            if train {
                let (out, caches) = model.forward_cached(&plan, &comm, &x_own);
                let diff = ops::sub(&out, &target.slice_rows(lo, hi - lo));
                model.backward(&plan, &comm, &caches, &diff);
            } else {
                model.inference(&plan, &comm, &x_own);
            }
        });
        stats.total_bytes()
    };
    let inf = run(false);
    let tr = run(true);
    assert!(tr > inf, "training must move more than inference");
    assert!(
        tr < 6 * inf,
        "training volume implausibly high: {tr} vs {inf}"
    );
}
